package proto

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
	"mpn/internal/gnn"
)

// --- codec -----------------------------------------------------------------

func TestMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: TRegister, Group: 7, User: 2, GroupSize: 3, Loc: geom.Pt(0.25, 0.5)},
		{Type: TReport, Group: 1, User: 0, Loc: geom.Pt(-1, 2)},
		{Type: TProbe, Group: 9, User: 4},
		{Type: TProbeReply, Group: 9, User: 4, Loc: geom.Pt(0.1, 0.9)},
		{Type: TNotify, Group: 3, User: 1, Meeting: geom.Pt(0.4, 0.6), Region: []byte{1, 2, 3, 4}},
		{Type: TError, Text: "boom"},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Group != want.Group || got.User != want.User ||
			got.GroupSize != want.GroupSize || got.Loc != want.Loc ||
			got.Meeting != want.Meeting || got.Text != want.Text ||
			!bytes.Equal(got.Region, want.Region) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestReadErrors(t *testing.T) {
	// Truncated header.
	if _, err := Read(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Oversized frame length.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := Read(&buf); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge got %v", err)
	}
	// Corrupt payload (bad type).
	var ok bytes.Buffer
	if err := Write(&ok, Message{Type: TReport}); err != nil {
		t.Fatal(err)
	}
	raw := ok.Bytes()
	raw[4] = 0xEE // type byte inside payload
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt type accepted")
	}
	// Truncated payload.
	if _, err := Read(bytes.NewReader(raw[:10])); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, tt := range []MsgType{TRegister, TReport, TProbe, TProbeReply, TNotify, TError, MsgType(42)} {
		if tt.String() == "" {
			t.Fatal("empty string")
		}
	}
}

// --- region codec ------------------------------------------------------------

func TestRegionCodec(t *testing.T) {
	c := core.CircleRegion(geom.Pt(0.25, 0.75), 0.125)
	dec, err := DecodeRegion(encodeRegion(c))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Circle != c.Circle {
		t.Fatalf("circle mismatch: %v vs %v", dec.Circle, c.Circle)
	}
	tr := core.TileRegion(
		geom.RectAround(geom.Pt(0.5, 0.5), 0.01),
		geom.RectAround(geom.Pt(0.51, 0.5), 0.01),
	)
	dec, err = DecodeRegion(encodeRegion(tr))
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumTiles() != 2 {
		t.Fatalf("tiles=%d", dec.NumTiles())
	}
	if _, err := DecodeRegion([]byte{9, 9}); err == nil {
		t.Fatal("garbage region accepted")
	}
}

// --- coordinator + client over net.Pipe -------------------------------------

// testPlan builds a PlanFunc over a small POI set.
func testPlan(t testing.TB, method string) PlanFunc {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	pois := make([]geom.Point, 500)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	opts := core.DefaultOptions()
	opts.Aggregate = gnn.Max
	opts.TileLimit = 5
	planner, err := core.NewPlanner(pois, opts)
	if err != nil {
		t.Fatal(err)
	}
	return func(users []geom.Point) (geom.Point, []core.SafeRegion, error) {
		var plan core.Plan
		var perr error
		if method == "circle" {
			plan, perr = planner.CircleMSR(users)
		} else {
			plan, perr = planner.TileMSR(users, nil)
		}
		if perr != nil {
			return geom.Point{}, nil, perr
		}
		return plan.Best.Item.P, plan.Regions, nil
	}
}

// testUser wires one client over a pipe to the coordinator.
type testUser struct {
	client   *Client
	conn     net.Conn
	loc      geom.Point
	locMu    sync.Mutex
	notifyCh chan geom.Point
	runErr   chan error
}

// disconnect severs the client's connection, as a crashed or departing
// user would.
func (u *testUser) disconnect() { _ = u.conn.Close() }

func newTestUser(t *testing.T, coord *Coordinator, group, user uint32, start geom.Point) *testUser {
	t.Helper()
	serverSide, clientSide := net.Pipe()
	go func() { _ = coord.ServeConn(serverSide) }()

	u := &testUser{conn: clientSide, loc: start, notifyCh: make(chan geom.Point, 16), runErr: make(chan error, 1)}
	cl, err := NewClient(clientSide, group, user,
		func() geom.Point {
			u.locMu.Lock()
			defer u.locMu.Unlock()
			return u.loc
		},
		func(meeting geom.Point, _ core.SafeRegion) {
			u.notifyCh <- meeting
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	u.client = cl
	go func() { u.runErr <- cl.Run() }()
	t.Cleanup(func() { clientSide.Close() })
	return u
}

func (u *testUser) setLoc(p geom.Point) {
	u.locMu.Lock()
	u.loc = p
	u.locMu.Unlock()
}

func (u *testUser) waitNotify(t *testing.T) geom.Point {
	t.Helper()
	select {
	case p := <-u.notifyCh:
		return p
	case err := <-u.runErr:
		t.Fatalf("client stopped: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for notification")
	}
	return geom.Point{}
}

func TestEndToEndProtocol(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "tile"), nil)

	u1 := newTestUser(t, coord, 1, 0, geom.Pt(0.30, 0.30))
	u2 := newTestUser(t, coord, 1, 1, geom.Pt(0.35, 0.32))
	u3 := newTestUser(t, coord, 1, 2, geom.Pt(0.31, 0.36))
	users := []*testUser{u1, u2, u3}

	// Registration: the third register completes the group and everyone
	// gets the initial notification.
	for i, u := range users {
		if err := u.client.Register(3); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	first := make([]geom.Point, 3)
	for i, u := range users {
		first[i] = u.waitNotify(t)
	}
	if first[0] != first[1] || first[1] != first[2] {
		t.Fatalf("members notified of different meeting points: %v", first)
	}
	for i, u := range users {
		if u.client.NeedsUpdate(u.loc) {
			t.Fatalf("user %d's own location outside fresh region", i)
		}
		_ = u.client.Region()
		if u.client.Meeting() != first[i] {
			t.Fatal("Meeting() mismatch")
		}
	}

	// u1 escapes and reports: the probe round must reach u2/u3 and a new
	// notification must land everywhere.
	u1.setLoc(geom.Pt(0.70, 0.70))
	u2.setLoc(geom.Pt(0.36, 0.33))
	u3.setLoc(geom.Pt(0.30, 0.37))
	if err := u1.client.Report(); err != nil {
		t.Fatal(err)
	}
	second := make([]geom.Point, 3)
	for i, u := range users {
		second[i] = u.waitNotify(t)
	}
	if second[0] != second[1] || second[1] != second[2] {
		t.Fatalf("second round mismatch: %v", second)
	}
	if second[0] == first[0] {
		t.Log("meeting point unchanged after escape (allowed, but unusual for this jump)")
	}
	if coord.NumGroups() != 1 {
		t.Fatalf("groups=%d", coord.NumGroups())
	}
}

func TestCoordinatorRejectsBadRegistration(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)
	serverSide, clientSide := net.Pipe()
	go func() { _ = coord.ServeConn(serverSide) }()
	defer clientSide.Close()

	// Zero group size.
	if err := Write(clientSide, Message{Type: TRegister, Group: 1, User: 0, GroupSize: 0}); err != nil {
		t.Fatal(err)
	}
	msg, err := Read(clientSide)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != TError {
		t.Fatalf("want TError got %v", msg.Type)
	}

	// Report before register.
	if err := Write(clientSide, Message{Type: TReport, Group: 1, User: 0}); err != nil {
		t.Fatal(err)
	}
	if msg, err = Read(clientSide); err != nil || msg.Type != TError {
		t.Fatalf("report-before-register: %v %v", msg.Type, err)
	}
}

func TestCoordinatorDuplicateUser(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)
	a, b := net.Pipe()
	go func() { _ = coord.ServeConn(a) }()
	defer b.Close()

	reg := Message{Type: TRegister, Group: 5, User: 3, GroupSize: 2, Loc: geom.Pt(0.1, 0.1)}
	if err := Write(b, reg); err != nil {
		t.Fatal(err)
	}
	// The pipe write returns when the frame is consumed, not when the
	// registration is processed; wait for it to take effect so the second
	// connection is deterministically the duplicate.
	deadline := time.Now().Add(5 * time.Second)
	for coord.NumGroups() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("registration never took effect")
		}
		time.Sleep(time.Millisecond)
	}
	// Same user again on a second connection.
	a2, b2 := net.Pipe()
	go func() { _ = coord.ServeConn(a2) }()
	defer b2.Close()
	if err := Write(b2, reg); err != nil {
		t.Fatal(err)
	}
	msg, err := Read(b2)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != TError {
		t.Fatalf("duplicate user not rejected: %v", msg.Type)
	}
}

func TestMemberDisconnectCleansUp(t *testing.T) {
	coord := NewCoordinator(testPlan(t, "circle"), nil)
	a, b := net.Pipe()
	done := make(chan struct{})
	go func() { _ = coord.ServeConn(a); close(done) }()

	if err := Write(b, Message{Type: TRegister, Group: 8, User: 0, GroupSize: 2, Loc: geom.Pt(0.2, 0.2)}); err != nil {
		t.Fatal(err)
	}
	// Give the coordinator a moment to register, then disconnect.
	time.Sleep(50 * time.Millisecond)
	if coord.NumGroups() != 1 {
		t.Fatalf("groups=%d want 1", coord.NumGroups())
	}
	b.Close()
	<-done
	if coord.NumGroups() != 0 {
		t.Fatalf("groups=%d want 0 after disconnect", coord.NumGroups())
	}
}

func TestClientErrors(t *testing.T) {
	if _, err := NewClient(nil, 0, 0, nil, nil); err == nil {
		t.Fatal("nil LocFunc accepted")
	}
	// Server error frame terminates Run with an error.
	a, b := net.Pipe()
	cl, err := NewClient(b, 1, 1, func() geom.Point { return geom.Point{} }, nil)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- cl.Run() }()
	if err := Write(a, Message{Type: TError, Text: "nope"}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Run swallowed server error")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
	a.Close()
	b.Close()
}

func TestClientCleanEOF(t *testing.T) {
	a, b := net.Pipe()
	cl, _ := NewClient(b, 1, 1, func() geom.Point { return geom.Point{} }, nil)
	errCh := make(chan error, 1)
	go func() { errCh <- cl.Run() }()
	a.Close()
	select {
	case err := <-errCh:
		// net.Pipe close surfaces as io.ErrClosedPipe, not EOF; both are
		// acceptable terminations, but nil must mean EOF.
		_ = err
	case <-time.After(3 * time.Second):
		t.Fatal("timeout")
	}
}

var _ io.ReadWriteCloser = (net.Conn)(nil)
