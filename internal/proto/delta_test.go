package proto

import (
	"bytes"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/geom"
)

// --- codec -----------------------------------------------------------------

func TestDeltaFrameRoundTrip(t *testing.T) {
	region := encodeRegion(core.CircleRegion(geom.Pt(0.2, 0.3), 0.05))
	msgs := []Message{
		// Steady-state kept frame: nothing but the epoch confirmation.
		{Type: TNotifyDelta, Group: 7, User: 2, Epoch: 9},
		// Meeting moved, region unchanged.
		{Type: TNotifyDelta, Group: 7, User: 2, Epoch: 9,
			MeetingChanged: true, Meeting: geom.Pt(0.4, 0.6)},
		// One changed region.
		{Type: TNotifyDelta, Group: 1, User: 0, Epoch: 4,
			Deltas: []RegionDelta{{Member: 0, Epoch: 4, Region: region}}},
		// Multiple records, meeting change, large epochs.
		{Type: TNotifyDelta, Group: 1 << 30, User: 3, Epoch: 1 << 40,
			MeetingChanged: true, Meeting: geom.Pt(-1, 2),
			Deltas: []RegionDelta{
				{Member: 3, Epoch: 1 << 40, Region: region},
				{Member: 9, Epoch: 7, Region: []byte{1}},
			}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Group != want.Group || got.User != want.User ||
			got.Epoch != want.Epoch || got.MeetingChanged != want.MeetingChanged ||
			(want.MeetingChanged && got.Meeting != want.Meeting) ||
			!reflect.DeepEqual(got.Deltas, want.Deltas) {
			t.Fatalf("delta round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestClassicFrameFlagsEpochRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: TRegister, Group: 7, User: 2, GroupSize: 3, Flags: FlagDeltaCapable, Loc: geom.Pt(0.25, 0.5)},
		{Type: TNotify, Group: 3, User: 1, Epoch: 42, Meeting: geom.Pt(0.4, 0.6), Region: []byte{1, 2, 3}},
		{Type: TNack, Group: 3, User: 1, Epoch: 41},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.Epoch != want.Epoch ||
			got.Group != want.Group || got.User != want.User || !bytes.Equal(got.Region, want.Region) {
			t.Fatalf("classic round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestDeltaFrameCorruption: every truncation of a valid delta frame's
// payload, and several mutations, must fail cleanly.
func TestDeltaFrameCorruption(t *testing.T) {
	m := Message{Type: TNotifyDelta, Group: 5, User: 1, Epoch: 3,
		MeetingChanged: true, Meeting: geom.Pt(0.5, 0.5),
		Deltas: []RegionDelta{{Member: 1, Epoch: 3, Region: []byte{9, 9, 9}}}}
	frame, err := m.AppendFrame(nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]
	for cut := 1; cut < len(payload); cut++ {
		if _, err := parsePayload(payload[:cut]); err == nil {
			// A truncation that still parses must at least not panic and
			// must be a self-consistent shorter frame; the only way that
			// happens is a record boundary — but trailing-garbage checks
			// make any strict prefix invalid.
			t.Fatalf("truncated delta payload (%d/%d bytes) accepted", cut, len(payload))
		}
	}
	// Unknown delta flags are rejected.
	mut := append([]byte(nil), payload...)
	// flags byte sits after type + uvarint(group=5) + uvarint(user=1).
	mut[3] = 0x80
	if _, err := parsePayload(mut); err == nil {
		t.Fatal("unknown delta flags accepted")
	}
	// Absurd record count is rejected.
	bad := []byte{byte(TNotifyDelta), 5, 1, 0, 3, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, err := parsePayload(bad); err == nil {
		t.Fatal("absurd record count accepted")
	}
}

// TestCircleEncodingIs25Bytes pins the circle region wire size the
// package doc promises: one tag byte plus three little-endian float64s.
func TestCircleEncodingIs25Bytes(t *testing.T) {
	enc := encodeRegion(core.CircleRegion(geom.Pt(0.125, 0.75), 0.0625))
	if len(enc) != 25 {
		t.Fatalf("encoded circle is %d bytes, want 25", len(enc))
	}
	if enc[0] != 'C' {
		t.Fatalf("circle tag %q, want 'C'", enc[0])
	}
	dec, err := DecodeRegion(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != core.KindCircle || dec.Circle.C != geom.Pt(0.125, 0.75) || dec.Circle.R != 0.0625 {
		t.Fatalf("decoded %+v", dec)
	}
}

// TestDeltaKeptFrameIsTiny pins the steady-state win: a kept-path delta
// frame (nothing changed) must be an order of magnitude smaller than the
// equivalent full notify carrying a region.
func TestDeltaKeptFrameIsTiny(t *testing.T) {
	kept := Message{Type: TNotifyDelta, Group: 3, User: 1, Epoch: 5}
	frame, err := kept.AppendFrame(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) > 16 {
		t.Fatalf("kept delta frame is %d bytes, want ≤ 16", len(frame))
	}
	full := Message{Type: TNotify, Group: 3, User: 1, Epoch: 5,
		Meeting: geom.Pt(0.5, 0.5),
		Region:  encodeRegion(core.CircleRegion(geom.Pt(0.5, 0.5), 0.1))}
	fullFrame, err := full.AppendFrame(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullFrame) < 5*len(frame) {
		t.Fatalf("full frame %dB vs kept delta %dB: expected ≥5× headroom", len(fullFrame), len(frame))
	}
}

// --- coordinator delta delivery --------------------------------------------

// scriptedBackend is a SubmitFunc whose registrations return a fixed
// plan inline and whose steady-state submissions are recorded; the test
// then drives DeliverEpochs by hand.
type scriptedBackend struct {
	mu      sync.Mutex
	regions []core.SafeRegion
	epochs  []uint64
	meeting geom.Point
	submits int
}

func (b *scriptedBackend) submit(gid uint32, ids []uint32, users []geom.Point) (geom.Point, []core.SafeRegion, []uint64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.submits++
	if len(b.regions) != len(ids) {
		return geom.Point{}, nil, nil, false
	}
	return b.meeting, b.regions, b.epochs, true
}

// rawConn registers over a pipe without the Client state machine, so the
// test observes exact frame types and sizes.
type rawConn struct {
	conn  net.Conn
	count *countingConn
}

type countingConn struct {
	net.Conn
	mu   sync.Mutex
	read int
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.read += n
	c.mu.Unlock()
	return n, err
}

func (c *countingConn) ReadCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.read
}

func dialRaw(t *testing.T, coord *Coordinator) *rawConn {
	t.Helper()
	serverSide, clientSide := net.Pipe()
	go func() { _ = coord.ServeConn(serverSide) }()
	cc := &countingConn{Conn: clientSide}
	t.Cleanup(func() { clientSide.Close() })
	return &rawConn{conn: clientSide, count: cc}
}

func (r *rawConn) read(t *testing.T) Message {
	t.Helper()
	_ = r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := Read(r.count)
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	_ = r.conn.SetReadDeadline(time.Time{})
	return m
}

// drain reads frames until the connection goes quiet, returning how many
// frames it consumed.
func (r *rawConn) drain(t *testing.T) int {
	t.Helper()
	n := 0
	for {
		_ = r.conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		if _, err := Read(r.count); err != nil {
			_ = r.conn.SetReadDeadline(time.Time{})
			return n
		}
		n++
	}
}

func circleRegions(n int) []core.SafeRegion {
	out := make([]core.SafeRegion, n)
	for i := range out {
		out[i] = core.CircleRegion(geom.Pt(0.1*float64(i+1), 0.2), 0.05)
	}
	return out
}

// TestCoordinatorDeltaKeptAndChanged walks the wire protocol through
// registration (full), a kept update (record-less delta), a changed
// region (one-record delta), and a meeting move.
func TestCoordinatorDeltaKeptAndChanged(t *testing.T) {
	backend := &scriptedBackend{
		regions: circleRegions(1),
		epochs:  []uint64{1},
		meeting: geom.Pt(0.5, 0.5),
	}
	coord := NewAsyncCoordinator(backend.submit, nil)
	coord.SetDeltaEnabled(true)

	rc := dialRaw(t, coord)
	if err := Write(rc.conn, Message{
		Type: TRegister, Group: 1, User: 0, GroupSize: 1,
		Flags: FlagDeltaCapable, Loc: geom.Pt(0.1, 0.2),
	}); err != nil {
		t.Fatal(err)
	}
	reg := rc.read(t)
	if reg.Type != TNotify || reg.Epoch != 1 || len(reg.Region) == 0 {
		t.Fatalf("registration frame %+v", reg)
	}

	// Kept plan: same epochs, same meeting → record-less delta.
	before := rc.count.ReadCount()
	coord.DeliverEpochs(1, []uint32{0}, backend.meeting, backend.regions, []uint64{1}, nil)
	kept := rc.read(t)
	if kept.Type != TNotifyDelta || kept.Epoch != 1 || len(kept.Deltas) != 0 || kept.MeetingChanged {
		t.Fatalf("kept frame %+v", kept)
	}
	if sz := rc.count.ReadCount() - before; sz > 16 {
		t.Fatalf("kept delta consumed %d wire bytes, want ≤ 16", sz)
	}

	// Changed region: epoch advances, one record travels.
	newRegions := []core.SafeRegion{core.CircleRegion(geom.Pt(0.11, 0.2), 0.04)}
	coord.DeliverEpochs(1, []uint32{0}, backend.meeting, newRegions, []uint64{2}, nil)
	chg := rc.read(t)
	if chg.Type != TNotifyDelta || chg.Epoch != 2 || len(chg.Deltas) != 1 {
		t.Fatalf("changed frame %+v", chg)
	}
	if chg.Deltas[0].Member != 0 || chg.Deltas[0].Epoch != 2 ||
		!bytes.Equal(chg.Deltas[0].Region, encodeRegion(newRegions[0])) {
		t.Fatalf("changed record %+v", chg.Deltas[0])
	}

	// Meeting moves while the region stays: delta with meeting, no record.
	moved := geom.Pt(0.51, 0.5)
	coord.DeliverEpochs(1, []uint32{0}, moved, newRegions, []uint64{2}, nil)
	mm := rc.read(t)
	if mm.Type != TNotifyDelta || !mm.MeetingChanged || mm.Meeting != moved || len(mm.Deltas) != 0 {
		t.Fatalf("meeting frame %+v", mm)
	}
}

// TestCoordinatorDeltaNotNegotiated: a client without FlagDeltaCapable
// on a delta-enabled server receives full frames forever.
func TestCoordinatorDeltaNotNegotiated(t *testing.T) {
	backend := &scriptedBackend{regions: circleRegions(1), epochs: []uint64{1}, meeting: geom.Pt(0.5, 0.5)}
	coord := NewAsyncCoordinator(backend.submit, nil)
	coord.SetDeltaEnabled(true)
	rc := dialRaw(t, coord)
	if err := Write(rc.conn, Message{Type: TRegister, Group: 1, User: 0, GroupSize: 1, Loc: geom.Pt(0.1, 0.2)}); err != nil {
		t.Fatal(err)
	}
	if m := rc.read(t); m.Type != TNotify {
		t.Fatalf("registration frame %v", m.Type)
	}
	coord.DeliverEpochs(1, []uint32{0}, backend.meeting, backend.regions, []uint64{1}, nil)
	if m := rc.read(t); m.Type != TNotify {
		t.Fatalf("kept update frame %v, want full TNotify without negotiation", m.Type)
	}
}

// TestCoordinatorNackRepair: a TNack is answered with a full TNotify
// carrying the group's latest distributed plan.
func TestCoordinatorNackRepair(t *testing.T) {
	backend := &scriptedBackend{regions: circleRegions(1), epochs: []uint64{1}, meeting: geom.Pt(0.5, 0.5)}
	coord := NewAsyncCoordinator(backend.submit, nil)
	coord.SetDeltaEnabled(true)
	rc := dialRaw(t, coord)
	if err := Write(rc.conn, Message{
		Type: TRegister, Group: 1, User: 0, GroupSize: 1,
		Flags: FlagDeltaCapable, Loc: geom.Pt(0.1, 0.2),
	}); err != nil {
		t.Fatal(err)
	}
	reg := rc.read(t)

	if err := Write(rc.conn, Message{Type: TNack, Group: 1, User: 0, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	repair := rc.read(t)
	if repair.Type != TNotify || repair.Epoch != 1 || !bytes.Equal(repair.Region, reg.Region) {
		t.Fatalf("nack repair frame %+v", repair)
	}

	// The repair reset delivered-state; the next kept delivery is a delta
	// again.
	coord.DeliverEpochs(1, []uint32{0}, backend.meeting, backend.regions, []uint64{1}, nil)
	if m := rc.read(t); m.Type != TNotifyDelta {
		t.Fatalf("post-repair frame %v", m.Type)
	}
}

// TestCoordinatorReconnectGetsFullSnapshot: a member that drops and
// rejoins mid-stream must receive a full TNotify (never a delta) on the
// next delivery, while the member that stayed keeps receiving deltas.
func TestCoordinatorReconnectGetsFullSnapshot(t *testing.T) {
	backend := &scriptedBackend{regions: circleRegions(2), epochs: []uint64{3, 3}, meeting: geom.Pt(0.5, 0.5)}
	coord := NewAsyncCoordinator(backend.submit, nil)
	coord.SetDeltaEnabled(true)

	reg := func(rc *rawConn, user uint32) {
		t.Helper()
		if err := Write(rc.conn, Message{
			Type: TRegister, Group: 2, User: user, GroupSize: 2,
			Flags: FlagDeltaCapable, Loc: geom.Pt(0.1*float64(user+1), 0.2),
		}); err != nil {
			t.Fatal(err)
		}
	}
	rc0 := dialRaw(t, coord)
	rc1 := dialRaw(t, coord)
	reg(rc0, 0)
	reg(rc1, 1)
	if m := rc0.read(t); m.Type != TNotify {
		t.Fatalf("u0 registration frame %v", m.Type)
	}
	if m := rc1.read(t); m.Type != TNotify {
		t.Fatalf("u1 registration frame %v", m.Type)
	}

	// Steady state: both on deltas.
	coord.DeliverEpochs(2, []uint32{0, 1}, backend.meeting, backend.regions, backend.epochs, nil)
	if m := rc0.read(t); m.Type != TNotifyDelta {
		t.Fatalf("u0 steady frame %v", m.Type)
	}
	if m := rc1.read(t); m.Type != TNotifyDelta {
		t.Fatalf("u1 steady frame %v", m.Type)
	}

	// User 1 reconnects.
	rc1.conn.Close()
	waitGroupsSize(t, coord, 2, 1)
	rc1b := dialRaw(t, coord)
	reg(rc1b, 1)
	waitGroupsSize(t, coord, 2, 2)
	// Re-completion triggered a replan; our backend answers inline with
	// the registration path, so user 1's first frame after rejoining is
	// the inline full notify. Deliver one more steady-state plan: user 1
	// must get a FULL frame if its inline notify had not happened (it
	// did), and user 0 stays on deltas either way.
	if m := rc1b.read(t); m.Type != TNotify {
		t.Fatalf("rejoined member's first frame %v, want full TNotify", m.Type)
	}
	// The re-registration replan also notified user 0 (inline submit
	// path); as an established delta member it stays on deltas.
	if m := rc0.read(t); m.Type != TNotifyDelta {
		t.Fatalf("u0 frame during rejoin %v", m.Type)
	}
	coord.DeliverEpochs(2, []uint32{0, 1}, backend.meeting, backend.regions, backend.epochs, nil)
	if m := rc0.read(t); m.Type != TNotifyDelta {
		t.Fatalf("u0 post-rejoin frame %v", m.Type)
	}
	if m := rc1b.read(t); m.Type != TNotifyDelta {
		t.Fatalf("u1 post-rejoin steady frame %v", m.Type)
	}
}

// waitGroupsSize waits until group gid has want members.
func waitGroupsSize(t *testing.T, c *Coordinator, gid uint32, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		g := c.groups[gid]
		n := 0
		if g != nil {
			n = len(g.members)
		}
		c.mu.Unlock()
		if n == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("group %d never reached %d members (have %d)", gid, want, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoordinatorDroppedFrameForcesFullRepair: when a member's outbox
// overflows and a notification is dropped, the coordinator must not
// assume the client holds the latest state — the next delivered frame
// after the drop is a full TNotify even though nothing changed.
func TestCoordinatorDroppedFrameForcesFullRepair(t *testing.T) {
	backend := &scriptedBackend{regions: circleRegions(1), epochs: []uint64{1}, meeting: geom.Pt(0.5, 0.5)}
	coord := NewAsyncCoordinator(backend.submit, nil)
	coord.SetDeltaEnabled(true)
	// Kicks off: the overflow below must only coalesce, not disconnect,
	// so the post-drop repair path can be observed on a live member.
	coord.SetSlowClientLimit(-1)
	rc := dialRaw(t, coord)
	if err := Write(rc.conn, Message{
		Type: TRegister, Group: 1, User: 0, GroupSize: 1,
		Flags: FlagDeltaCapable, Loc: geom.Pt(0.1, 0.2),
	}); err != nil {
		t.Fatal(err)
	}
	waitGroups(t, coord, 1)
	// Do not read: the writer goroutine blocks on the first frame (the
	// registration notify) and the outbox absorbs deltas until it
	// overflows; everything past that is dropped and flips needFull.
	for i := 0; i < outboxSize+8; i++ {
		coord.DeliverEpochs(1, []uint32{0}, backend.meeting, backend.regions, []uint64{1}, nil)
	}
	// Drain everything queued so far (the exact count depends on whether
	// the writer goroutine held a frame when the outbox filled).
	drained := rc.drain(t)
	if drained < outboxSize || drained > outboxSize+2 {
		t.Fatalf("drained %d frames from a %d-slot outbox", drained, outboxSize)
	}
	// Nothing changed, but the drop must force a full frame now.
	coord.DeliverEpochs(1, []uint32{0}, backend.meeting, backend.regions, []uint64{1}, nil)
	m := rc.read(t)
	if m.Type != TNotify {
		t.Fatalf("post-drop frame %v, want full TNotify repair", m.Type)
	}
	// And once repaired, deltas resume.
	coord.DeliverEpochs(1, []uint32{0}, backend.meeting, backend.regions, []uint64{1}, nil)
	if m := rc.read(t); m.Type != TNotifyDelta {
		t.Fatalf("post-repair frame %v", m.Type)
	}
}

// --- client state machine ---------------------------------------------------

// TestClientDeltaStateMachine feeds the client raw frames and checks the
// retained plan, the NACK emission, and the callback cadence.
func TestClientDeltaStateMachine(t *testing.T) {
	server, clientSide := net.Pipe()
	defer server.Close()
	notifies := make(chan core.SafeRegion, 16)
	cl, err := NewClient(clientSide, 1, 0,
		func() geom.Point { return geom.Pt(0.1, 0.1) },
		func(_ geom.Point, r core.SafeRegion) { notifies <- r },
	)
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- cl.Run() }()
	defer clientSide.Close()

	// A delta before any full plan must be NACKed and not applied.
	if err := Write(server, Message{Type: TNotifyDelta, Group: 1, User: 0, Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	nack, err := Read(server)
	if err != nil {
		t.Fatal(err)
	}
	if nack.Type != TNack || nack.User != 0 {
		t.Fatalf("want TNack, got %+v", nack)
	}
	select {
	case <-notifies:
		t.Fatal("unappliable delta invoked the callback")
	default:
	}

	// Full frame establishes the plan.
	region := core.CircleRegion(geom.Pt(0.1, 0.1), 0.2)
	if err := Write(server, Message{
		Type: TNotify, Group: 1, User: 0, Epoch: 3,
		Meeting: geom.Pt(0.5, 0.5), Region: encodeRegion(region),
	}); err != nil {
		t.Fatal(err)
	}
	got := <-notifies
	if !reflect.DeepEqual(got, region) || cl.Epoch() != 3 {
		t.Fatalf("full frame applied %+v epoch %d", got, cl.Epoch())
	}

	// Kept delta at the matching epoch: callback fires, region retained.
	if err := Write(server, Message{Type: TNotifyDelta, Group: 1, User: 0, Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	if got := <-notifies; !reflect.DeepEqual(got, region) {
		t.Fatalf("kept delta changed the region: %+v", got)
	}

	// Epoch-gap delta without a record: NACK, state untouched.
	if err := Write(server, Message{Type: TNotifyDelta, Group: 1, User: 0, Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	if nack, err = Read(server); err != nil || nack.Type != TNack {
		t.Fatalf("gap: want TNack, got %+v err %v", nack, err)
	}
	if cl.Epoch() != 3 || !reflect.DeepEqual(cl.Region(), region) {
		t.Fatal("gap delta mutated client state")
	}

	// Delta with a record: applied, epoch advances, meeting rides along.
	region2 := core.CircleRegion(geom.Pt(0.12, 0.1), 0.15)
	if err := Write(server, Message{
		Type: TNotifyDelta, Group: 1, User: 0, Epoch: 6,
		MeetingChanged: true, Meeting: geom.Pt(0.6, 0.6),
		Deltas: []RegionDelta{{Member: 0, Epoch: 6, Region: encodeRegion(region2)}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := <-notifies; !reflect.DeepEqual(got, region2) {
		t.Fatalf("record delta applied %+v", got)
	}
	if cl.Epoch() != 6 || cl.Meeting() != geom.Pt(0.6, 0.6) {
		t.Fatalf("record delta state: epoch %d meeting %v", cl.Epoch(), cl.Meeting())
	}
	select {
	case err := <-runErr:
		t.Fatalf("client stopped: %v", err)
	default:
	}
}

// TestCoordinatorSameSizeChurnForcesFull is the regression test for the
// slot-vs-user epoch hazard: backend epochs are per SLOT, so when
// membership changes without changing the group size, a continuing
// member's slot can inherit another user's epoch counter — and a value
// that coincidentally matches her last delivered epoch must NOT let the
// coordinator skip her region. Any id-vector change resets the encoding
// cache and forces full frames to everyone.
func TestCoordinatorSameSizeChurnForcesFull(t *testing.T) {
	regionsA := circleRegions(2)
	backend := &scriptedBackend{regions: regionsA, epochs: []uint64{4, 4}, meeting: geom.Pt(0.5, 0.5)}
	coord := NewAsyncCoordinator(backend.submit, nil)
	coord.SetDeltaEnabled(true)

	reg := func(rc *rawConn, user uint32) {
		t.Helper()
		if err := Write(rc.conn, Message{
			Type: TRegister, Group: 6, User: user, GroupSize: 2,
			Flags: FlagDeltaCapable, Loc: geom.Pt(0.1*float64(user+1), 0.2),
		}); err != nil {
			t.Fatal(err)
		}
	}
	rc1 := dialRaw(t, coord)
	rc7 := dialRaw(t, coord)
	reg(rc1, 1)
	reg(rc7, 7)
	if m := rc1.read(t); m.Type != TNotify {
		t.Fatalf("u1 registration frame %v", m.Type)
	}
	if m := rc7.read(t); m.Type != TNotify || m.Epoch != 4 {
		t.Fatalf("u7 registration frame %+v", m)
	}
	// Steady state: u7 on deltas at epoch 4 (slot 1).
	coord.DeliverEpochs(6, []uint32{1, 7}, backend.meeting, regionsA, []uint64{4, 4}, nil)
	if m := rc1.read(t); m.Type != TNotifyDelta {
		t.Fatalf("u1 steady frame %v", m.Type)
	}
	if m := rc7.read(t); m.Type != TNotifyDelta || len(m.Deltas) != 0 {
		t.Fatalf("u7 steady frame %+v", m)
	}

	// Same-size churn: u1 leaves, u9 joins. u7 now occupies slot 0,
	// whose counter (u1's history) can coincidentally sit at 4 while the
	// region content is brand new.
	rc1.conn.Close()
	waitGroupsSize(t, coord, 6, 1)
	regionsB := []core.SafeRegion{
		core.CircleRegion(geom.Pt(0.7, 0.7), 0.03), // u7's fresh region, NOT regionsA[1]
		core.CircleRegion(geom.Pt(0.72, 0.71), 0.03),
	}
	backend.mu.Lock()
	backend.regions = regionsB
	backend.mu.Unlock()
	rc9 := dialRaw(t, coord)
	reg(rc9, 9)
	// The re-completion replan delivers inline with ids [7,9] and slot
	// epochs [4,4]. u7's last delivered epoch is 4 — the trap. She must
	// receive a FULL frame carrying her fresh region.
	m7 := rc7.read(t)
	if m7.Type != TNotify {
		t.Fatalf("continuing member got %v after same-size churn, want full TNotify", m7.Type)
	}
	if !bytes.Equal(m7.Region, encodeRegion(regionsB[0])) {
		t.Fatal("continuing member's post-churn region is not her fresh slot's region")
	}
	if m := rc9.read(t); m.Type != TNotify || !bytes.Equal(m.Region, encodeRegion(regionsB[1])) {
		t.Fatalf("joining member frame %+v", m)
	}
	// After the reset, deltas resume against the new id vector.
	coord.DeliverEpochs(6, []uint32{7, 9}, backend.meeting, regionsB, []uint64{4, 4}, nil)
	if m := rc7.read(t); m.Type != TNotifyDelta {
		t.Fatalf("u7 post-churn steady frame %v", m.Type)
	}
}
