package proto

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"

	"mpn/internal/core"
	"mpn/internal/faultinject"
	"mpn/internal/geom"
	"mpn/internal/netmpn"
	"mpn/internal/tileenc"
)

// PlanFunc computes a meeting point and safe regions for the given user
// locations; it is how the coordinator stays decoupled from the planner
// implementation.
type PlanFunc func(users []geom.Point) (geom.Point, []core.SafeRegion, error)

// SubmitFunc hands a replan request to an asynchronous compute backend
// (the sharded group engine). users[i] is the location of ids[i], the
// group's members in ascending user-id order. Normally the backend
// enqueues and answers later through Coordinator.Deliver, echoing ids so
// the delivery can be checked against membership churn, and returns
// ok=false. When the backend produced a plan synchronously — a group's
// one-time registration — it returns the plan with ok=true and the
// coordinator notifies the members inline, so the very first plan (the
// one clients cannot recover from losing, since they never escape a
// region they never received) does not depend on any lossy notification
// path. SubmitFunc is called with the coordinator lock held — which is
// what guarantees a group's snapshots reach the backend in report order —
// so it must only enqueue (or at most compute that one registration
// plan), never recompute steady-state reports inline.
//
// epochs, when non-nil, is the backend's per-member region epoch vector
// for the inline plan (regions[i] is at epoch epochs[i]); backends
// without epoch tracking return nil and the coordinator falls back to
// comparing encodings.
type SubmitFunc func(gid uint32, ids []uint32, users []geom.Point) (meeting geom.Point, regions []core.SafeRegion, epochs []uint64, ok bool)

// Coordinator is the server side of the Fig. 3 protocol: it accepts
// connections (one per user), assembles groups, and runs the
// report → probe → notify exchange, recomputing plans via PlanFunc.
//
// Outbound frames are queued per member and written by a dedicated
// goroutine, so the coordinator never blocks on a slow (or synchronous,
// e.g. net.Pipe) transport while holding its lock — a deadlock hazard
// otherwise, since clients may be writing to the server at the same
// moment.
// WriteGateFunc decides whether this node currently accepts client
// writes (registrations and reports). A nil error admits the write;
// peers is then the cluster's client-facing addresses (primary first)
// and epoch the fencing epoch that published them, pushed to freshly
// registered members as a TPeers frame. A non-nil error refuses the
// write: the client receives the peer list (its redirect target) and
// then the error, so a standby or deposed primary steers clients to the
// live one instead of silently serving writes it has no right to accept.
type WriteGateFunc func() (peers []string, epoch uint64, err error)

type Coordinator struct {
	plan   PlanFunc   // synchronous backend (nil in async mode)
	submit SubmitFunc // asynchronous backend (nil in sync mode)
	logger *log.Logger

	// gate, when set, is consulted before every client write (see
	// WriteGateFunc and SetWriteGate).
	gate WriteGateFunc

	// onEmpty, when set, runs (under the lock) when the last member of a
	// group disconnects — the engine-backed server uses it to unregister
	// the group from the compute backend before a reuse of the group id
	// can observe the stale mapping.
	onEmpty func(gid uint32)

	// delta enables TNotifyDelta frames toward members that negotiated
	// them (see SetDeltaEnabled).
	delta bool

	// slowLimit is the slow-client policy knob (see SetSlowClientLimit):
	// after this many consecutive outbox drops the member's connection is
	// kicked. 0 selects DefaultSlowClientLimit; negative disables kicks.
	slowLimit int

	stats coordCounters

	mu     sync.Mutex
	groups map[uint32]*group
	// locs holds the last reported location per group and user.
	locs map[uint32]map[uint32]geom.Point
}

// coordCounters are the coordinator's monotone counters, updated with
// atomics so Stats never takes the coordinator lock.
type coordCounters struct {
	droppedFrames   atomic.Uint64
	slowKicks       atomic.Uint64
	nackRepairs     atomic.Uint64
	staleDeliveries atomic.Uint64
	protocolErrors  atomic.Uint64
	heartbeats      atomic.Uint64
	compactProbes   atomic.Uint64
	observerFrames  atomic.Uint64
	writeRefusals   atomic.Uint64
}

// CoordStats is a snapshot of the coordinator's failure-semantics
// counters (see Coordinator.Stats).
type CoordStats struct {
	// DroppedFrames counts outbound frames discarded because a member's
	// outbox was full (the member is repaired by a later full notify).
	DroppedFrames uint64
	// SlowClientDisconnects counts members kicked by the slow-client
	// policy: their outbox stayed full for SlowClientLimit consecutive
	// deliveries.
	SlowClientDisconnects uint64
	// NackRepairs counts full notifies sent in answer to client NACKs.
	NackRepairs uint64
	// StaleDeliveries counts async plan deliveries dropped because group
	// membership changed while the plan was being computed.
	StaleDeliveries uint64
	// ProtocolErrors counts client frames rejected as protocol
	// violations (wrong type, register twice, report before register…).
	ProtocolErrors uint64
	// Heartbeats counts TPing frames answered with TPong.
	Heartbeats uint64
	// CompactProbes counts probes sent in the compact TProbeC form.
	CompactProbes uint64
	// ObserverFrames counts group-state TNotifyDelta frames successfully
	// enqueued to FlagObserver subscriptions.
	ObserverFrames uint64
	// WriteRefusals counts registrations and reports refused by the
	// write gate (this node was not the primary), each answered with a
	// peer redirect.
	WriteRefusals uint64
}

// Stats returns a snapshot of the coordinator's counters. Safe to call
// from any goroutine; never blocks on the coordinator lock.
func (c *Coordinator) Stats() CoordStats {
	return CoordStats{
		DroppedFrames:         c.stats.droppedFrames.Load(),
		SlowClientDisconnects: c.stats.slowKicks.Load(),
		NackRepairs:           c.stats.nackRepairs.Load(),
		StaleDeliveries:       c.stats.staleDeliveries.Load(),
		ProtocolErrors:        c.stats.protocolErrors.Load(),
		Heartbeats:            c.stats.heartbeats.Load(),
		CompactProbes:         c.stats.compactProbes.Load(),
		ObserverFrames:        c.stats.observerFrames.Load(),
		WriteRefusals:         c.stats.writeRefusals.Load(),
	}
}

// DefaultSlowClientLimit is how many consecutive outbox drops a member
// gets before the slow-client policy kicks its connection. Drops are
// already coalesced — a member with a full outbox keeps only needing one
// repair frame — so consecutive drops mean the client has not drained
// outboxSize frames across that many deliveries: it is not slow, it is
// gone.
const DefaultSlowClientLimit = 8

// SetSlowClientLimit configures the slow-client coalesce-then-disconnect
// policy: a member whose outbox drops n consecutive outbound frames has
// its connection closed (observable in Stats().SlowClientDisconnects and
// the log, with the drop streak as the reason). 0 selects
// DefaultSlowClientLimit; negative disables kicking — drops then only
// coalesce. Call before serving connections.
func (c *Coordinator) SetSlowClientLimit(n int) { c.slowLimit = n }

func (c *Coordinator) slowClientLimit() int {
	if c.slowLimit == 0 {
		return DefaultSlowClientLimit
	}
	return c.slowLimit
}

// SetDeltaEnabled turns delta notifications on or off. Call it before
// serving connections. With delta on, members that registered with
// FlagDeltaCapable receive TNotifyDelta frames carrying only the regions
// whose epoch advanced since their last delivery; everything else —
// registration plans, members that did not negotiate, members whose last
// frame was dropped, NACK repairs — still receives full TNotify frames.
func (c *Coordinator) SetDeltaEnabled(on bool) { c.delta = on }

// SetWriteGate installs the write-admission gate (see WriteGateFunc).
// Call it before serving connections. The gate runs without the
// coordinator lock, so it may consult replication state freely.
func (c *Coordinator) SetWriteGate(fn WriteGateFunc) { c.gate = fn }

// SetGroupEmptyHook registers fn to run whenever a group loses its last
// member. Call it before serving connections. fn runs with the
// coordinator lock held — so a re-registration under the same group id
// cannot interleave with the teardown — and therefore must not call back
// into the coordinator or block.
func (c *Coordinator) SetGroupEmptyHook(fn func(gid uint32)) { c.onEmpty = fn }

// outboxSize bounds the per-member outbound queue. A member this far
// behind is considered dead and dropped.
const outboxSize = 256

// group is the server-side state of one user group.
type group struct {
	size    uint32
	members map[uint32]*member
	// observers are FlagObserver subscriptions: connections that receive
	// the whole group's regions on every notify but do not count toward
	// size, are never probed, and never report. Keyed by user id in the
	// same id space as members (a duplicate across the two maps is
	// rejected at registration so disconnect routing is unambiguous).
	observers map[uint32]*member
	// probing is non-nil while a probe round is outstanding; it holds the
	// user ids whose replies are still missing.
	probing map[uint32]bool

	// enc caches each member's encoded region keyed by its epoch, shared
	// across every delivery to the group: an unchanged region (epoch
	// match, or byte-equal encoding when the backend supplies no epochs)
	// is never re-encoded. encIDs is the ascending member-id vector the
	// cache (and every member's delivered-epoch state) was built for:
	// backend epochs are per SLOT, not per user, so any membership
	// change — even one that keeps the group size — silently reassigns
	// slot counters to different users, and the cache must be rebuilt
	// and every member repaired with a full frame (see resetEncLocked).
	// lastMeeting/havePlan retain the last distributed plan's meeting
	// point so a NACK can be repaired from the cache alone.
	enc         map[uint32]*encRegion
	encIDs      []uint32
	lastMeeting geom.Point
	havePlan    bool
}

// resetEncLocked invalidates the group's encoded-region cache and every
// member's delivered state after a membership change: slot epochs may
// now describe different users' regions, so nothing previously
// delivered or cached can be trusted to match by epoch alone.
func (g *group) resetEncLocked(ids []uint32) {
	clear(g.enc)
	g.encIDs = append(g.encIDs[:0], ids...)
	for _, mb := range g.members {
		mb.needFull = true
	}
	for _, ob := range g.observers {
		ob.needFull = true
	}
}

// encRegion is one cached region encoding. data is immutable once
// stored (it is shared with member outboxes).
type encRegion struct {
	epoch uint64
	data  []byte
}

type member struct {
	user uint32
	out  chan Message
	done chan struct{}

	// Delta-protocol state, guarded by the coordinator lock: delta is
	// the registration-time negotiation; needFull forces the next
	// delivery to be a full TNotify (fresh connections start true, and
	// any dropped frame or NACK sets it — the server never assumes a
	// client holds state it cannot prove was enqueued); epoch and
	// meeting are the last values successfully enqueued to this member.
	delta    bool
	needFull bool
	epoch    uint64
	meeting  geom.Point

	// compact is the registration-time FlagCompactProbe negotiation:
	// probes to this member go out as TProbeC.
	compact bool
	// obsEpochs, on observer connections only, records the per-member
	// region epoch last successfully enqueued to this observer — the
	// observer-side analogue of epoch, one entry per watched member.
	obsEpochs map[uint32]uint64
	// drops counts consecutive outbox drops (guarded by the coordinator
	// lock); any successful send resets it. kick, when non-nil, closes
	// the member's connection — the slow-client policy's teeth.
	drops int
	kick  func()
}

// noteSend updates the slow-client drop streak after a send attempt and
// applies the policy: limit consecutive drops close the connection. Must
// be called with the coordinator lock held.
func (m *member) noteSend(c *Coordinator, gid uint32, ok bool) {
	if ok {
		m.drops = 0
		return
	}
	m.drops++
	c.stats.droppedFrames.Add(1)
	if limit := c.slowClientLimit(); limit > 0 && m.drops == limit && m.kick != nil {
		c.stats.slowKicks.Add(1)
		c.logger.Printf("group %d: user %d disconnected by slow-client policy (%d consecutive outbox drops)",
			gid, m.user, m.drops)
		m.kick()
	}
}

// newMember starts the writer goroutine for one connection.
func newMember(user uint32, w io.Writer, logger *log.Logger) *member {
	m := &member{user: user, out: make(chan Message, outboxSize), done: make(chan struct{}), needFull: true}
	go func() {
		defer close(m.done)
		for msg := range m.out {
			if err := Write(w, msg); err != nil {
				logger.Printf("user %d: write failed: %v", user, err)
				// Drain remaining messages so senders never block.
				for range m.out {
				}
				return
			}
		}
	}()
	return m
}

// send enqueues without blocking; it reports whether the member accepted
// the frame.
func (m *member) send(msg Message) bool {
	select {
	case m.out <- msg:
		return true
	default:
		return false
	}
}

// close stops the writer after the queue drains.
func (m *member) close() {
	close(m.out)
	<-m.done
}

// NewCoordinator builds a coordinator around a plan function. logger may
// be nil to disable logging.
func NewCoordinator(plan PlanFunc, logger *log.Logger) *Coordinator {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Coordinator{
		plan:   plan,
		logger: logger,
		groups: map[uint32]*group{},
		locs:   map[uint32]map[uint32]geom.Point{},
	}
}

// NewAsyncCoordinator builds a coordinator whose replans are submitted to
// an asynchronous backend instead of computed inline: the transport's
// read loops never wait on the planner, and the coordinator lock is never
// held across a computation. Results return through Deliver. logger may
// be nil to disable logging.
func NewAsyncCoordinator(submit SubmitFunc, logger *log.Logger) *Coordinator {
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Coordinator{
		submit: submit,
		logger: logger,
		groups: map[uint32]*group{},
		locs:   map[uint32]map[uint32]geom.Point{},
	}
}

// Deliver fans a completed asynchronous plan out to the group's members
// (step 3 of the protocol, decoupled from the submission that caused it).
// ids must be the id ordering the SubmitFunc received for the snapshot
// that was computed (regions[i] belongs to ids[i]); pass nil to skip the
// membership check (error deliveries). A delivery that races membership
// churn — the computed ids no longer exactly match the current members —
// is dropped, so a rejoining user can never receive a region computed for
// a departed one; the next escape report triggers a fresh replan from
// current state.
func (c *Coordinator) Deliver(gid uint32, ids []uint32, meeting geom.Point, regions []core.SafeRegion, err error) {
	c.DeliverEpochs(gid, ids, meeting, regions, nil, err)
}

// DeliverEpochs is Deliver with the backend's per-member region epoch
// vector (regions[i] is at epoch epochs[i], see
// engine.Notification.Epochs): regions whose epoch matches the cached
// encoding are not re-encoded, and delta-capable members receive only
// the records that changed since their last delivery. A nil epochs falls
// back to comparing fresh encodings against the cache — correct for any
// backend, just not encode-free.
func (c *Coordinator) DeliverEpochs(gid uint32, ids []uint32, meeting geom.Point, regions []core.SafeRegion, epochs []uint64, err error) {
	faultinject.Fire(faultinject.CoordDeliver)
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[gid]
	if g == nil {
		return
	}
	current := memberIDs(g)
	if err != nil {
		c.logger.Printf("group %d: plan failed: %v", gid, err)
		for _, uid := range current {
			g.members[uid].send(Message{Type: TError, Group: gid, Text: err.Error()})
		}
		return
	}
	if len(current) != len(regions) || (ids != nil && !sameIDs(ids, current)) {
		c.stats.staleDeliveries.Add(1)
		c.logger.Printf("group %d: dropping stale delivery (members %v, computed for %v, %d regions)",
			gid, current, ids, len(regions))
		return
	}
	c.notifyLocked(gid, g, current, meeting, regions, epochs)
}

// sameIDs reports whether two ascending id lists are identical.
func sameIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ServeConn runs the read loop for one client connection until EOF or a
// protocol error, then removes the member from its group. It is intended
// to be called in its own goroutine per accepted connection.
func (c *Coordinator) ServeConn(conn io.ReadWriteCloser) error {
	defer conn.Close()
	var gid, uid uint32
	registered := false
	defer func() {
		if registered {
			c.removeMember(gid, uid)
		}
	}()
	for {
		msg, err := Read(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch msg.Type {
		case TRegister:
			if registered {
				c.sendError(conn, "already registered")
				continue
			}
			if c.gate != nil {
				// Before registration no outbox exists, so the redirect
				// is written directly — nothing else owns the connection.
				if peers, epoch, gerr := c.gate(); gerr != nil {
					c.stats.writeRefusals.Add(1)
					_ = Write(conn, Message{Type: TPeers, Epoch: epoch, Peers: peers})
					_ = Write(conn, Message{Type: TError, Text: gerr.Error()})
					continue
				}
			}
			if err := c.register(msg, conn); err != nil {
				c.sendError(conn, err.Error())
				continue
			}
			gid, uid, registered = msg.Group, msg.User, true
			c.pushPeers(gid, uid)
		case TReport:
			if !registered {
				c.sendError(conn, "report before register")
				continue
			}
			if c.gate != nil {
				if peers, epoch, gerr := c.gate(); gerr != nil {
					c.refuseWrite(msg.Group, msg.User, peers, epoch, gerr)
					continue
				}
			}
			c.handleReport(msg)
		case TProbeReply, TProbeReplyC:
			if !registered {
				c.sendError(conn, "reply before register")
				continue
			}
			c.handleProbeReply(msg)
		case TPing:
			c.handlePing(msg, conn, registered, gid, uid)
		case TNack:
			if !registered {
				c.sendError(conn, "nack before register")
				continue
			}
			c.handleNack(msg)
		default:
			c.sendError(conn, fmt.Sprintf("unexpected %v from client", msg.Type))
		}
	}
}

// pushPeers enqueues the current peer advertisement to a freshly
// registered member or observer, so failover-capable clients learn the
// standby addresses before they ever need them. The gate is consulted
// outside the coordinator lock (it may take replication locks of its
// own); the frame rides the member's outbox like any other delivery.
func (c *Coordinator) pushPeers(gid, uid uint32) {
	if c.gate == nil {
		return
	}
	peers, epoch, err := c.gate()
	if err != nil || len(peers) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[gid]
	if g == nil {
		return
	}
	mb := g.members[uid]
	if mb == nil {
		mb = g.observers[uid]
	}
	if mb != nil {
		mb.noteSend(c, gid, mb.send(Message{Type: TPeers, Epoch: epoch, Peers: peers}))
	}
}

// refuseWrite answers a gated-off report from a registered member: a
// peer redirect followed by an error, both routed through the member's
// outbox — the writer goroutine owns the connection, so a direct write
// here would race it. The error ends the client's session; a
// reconnecting client then dials the advertised primary.
func (c *Coordinator) refuseWrite(gid, uid uint32, peers []string, epoch uint64, gerr error) {
	c.stats.writeRefusals.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[gid]
	if g == nil {
		return
	}
	mb := g.members[uid]
	if mb == nil {
		mb = g.observers[uid]
	}
	if mb == nil {
		return
	}
	if len(peers) > 0 {
		mb.send(Message{Type: TPeers, Epoch: epoch, Peers: peers})
	}
	mb.noteSend(c, gid, mb.send(Message{Type: TError, Group: gid, Text: gerr.Error()}))
}

// sendError writes directly: it is only used before the member has an
// outbox (or for protocol violations where blocking the offender is
// acceptable).
func (c *Coordinator) sendError(w io.Writer, text string) {
	c.stats.protocolErrors.Add(1)
	_ = Write(w, Message{Type: TError, Text: text})
}

// handlePing answers a heartbeat with TPong echoing the sequence number.
// A registered member's pong rides its outbox — the writer goroutine
// owns the connection, and a wedged outbox failing the heartbeat is
// exactly the liveness signal the peer wants. Before registration the
// read loop may write directly (nothing else owns the connection yet).
func (c *Coordinator) handlePing(msg Message, conn io.Writer, registered bool, gid, uid uint32) {
	c.stats.heartbeats.Add(1)
	pong := Message{Type: TPong, Epoch: msg.Epoch}
	if !registered {
		_ = Write(conn, pong)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[gid]
	if g == nil {
		return
	}
	mb := g.members[uid]
	if mb == nil {
		mb = g.observers[uid]
	}
	if mb != nil {
		mb.noteSend(c, gid, mb.send(pong))
	}
}

// register adds the member; when the group completes, the first plan is
// computed and distributed.
func (c *Coordinator) register(msg Message, w io.Writer) error {
	if msg.GroupSize == 0 {
		return errors.New("group size must be positive")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[msg.Group]
	if g == nil {
		g = &group{
			size:      msg.GroupSize,
			members:   map[uint32]*member{},
			observers: map[uint32]*member{},
			enc:       map[uint32]*encRegion{},
		}
		c.groups[msg.Group] = g
		c.locs[msg.Group] = map[uint32]geom.Point{}
	}
	if g.size != msg.GroupSize {
		return fmt.Errorf("group %d has size %d, not %d", msg.Group, g.size, msg.GroupSize)
	}
	if _, dup := g.members[msg.User]; dup {
		return fmt.Errorf("user %d already in group %d", msg.User, msg.Group)
	}
	if _, dup := g.observers[msg.User]; dup {
		return fmt.Errorf("user %d already observes group %d", msg.User, msg.Group)
	}
	if msg.Flags&FlagObserver != 0 {
		return c.registerObserverLocked(msg, g, w)
	}
	if uint32(len(g.members)) >= g.size {
		return fmt.Errorf("group %d is full", msg.Group)
	}
	mb := newMember(msg.User, w, c.logger)
	mb.delta = msg.Flags&FlagDeltaCapable != 0
	mb.compact = msg.Flags&FlagCompactProbe != 0
	if closer, ok := w.(io.Closer); ok {
		// The slow-client policy's kick: closing the connection fails the
		// member's read loop, which removes it through the normal path.
		mb.kick = func() { _ = closer.Close() }
	}
	g.members[msg.User] = mb
	c.locs[msg.Group][msg.User] = msg.Loc
	c.logger.Printf("group %d: user %d registered (%d/%d)",
		msg.Group, msg.User, len(g.members), g.size)
	if uint32(len(g.members)) == g.size {
		c.replanLocked(msg.Group, g)
	}
	return nil
}

// registerObserverLocked adds a FlagObserver subscription to the group:
// the connection gets the usual outbox/writer machinery but lives in the
// observers map — it does not count toward the group size and never
// participates in the report/probe exchange. If the group already
// distributed a plan, the observer is caught up immediately from the
// encoding cache; otherwise its first frame arrives with the group's
// first plan.
func (c *Coordinator) registerObserverLocked(msg Message, g *group, w io.Writer) error {
	ob := newMember(msg.User, w, c.logger)
	ob.obsEpochs = map[uint32]uint64{}
	if closer, ok := w.(io.Closer); ok {
		ob.kick = func() { _ = closer.Close() }
	}
	g.observers[msg.User] = ob
	c.logger.Printf("group %d: observer %d subscribed (%d observers)",
		msg.Group, msg.User, len(g.observers))
	if g.havePlan {
		c.sendObserverLocked(msg.Group, g, ob, g.lastMeeting)
	}
	return nil
}

// notifyObserversLocked fans the group's freshly cached plan out to its
// observers. Must run after the member loop of notifyLocked populated
// the encoding cache for the current membership.
func (c *Coordinator) notifyObserversLocked(gid uint32, g *group, meeting geom.Point) {
	for _, ob := range g.observers {
		c.sendObserverLocked(gid, g, ob, meeting)
	}
}

// sendObserverLocked builds and enqueues one observer TNotifyDelta from
// the group's encoding cache: a full (DeltaReset) frame carrying every
// member's region when the observer needs repair, otherwise only the
// records whose epoch advanced since the observer's last successful
// enqueue. A drop marks the observer for full repair, exactly like a
// member's dropped notify.
func (c *Coordinator) sendObserverLocked(gid uint32, g *group, ob *member, meeting geom.Point) {
	full := ob.needFull
	msg := Message{Type: TNotifyDelta, Group: gid, User: ob.user, DeltaReset: full}
	if full || meeting != ob.meeting {
		msg.MeetingChanged = true
		msg.Meeting = meeting
	}
	for _, uid := range g.encIDs {
		e := g.enc[uid]
		if e == nil {
			continue
		}
		if !full {
			if last, ok := ob.obsEpochs[uid]; ok && last == e.epoch {
				continue
			}
		}
		msg.Deltas = append(msg.Deltas, RegionDelta{Member: uid, Epoch: e.epoch, Region: e.data})
	}
	if !full && !msg.MeetingChanged && len(msg.Deltas) == 0 {
		return // nothing changed for this observer; no frame
	}
	ok := ob.send(msg)
	ob.noteSend(c, gid, ok)
	if !ok {
		ob.needFull = true
		c.logger.Printf("group %d: observer frame to %d dropped (outbox full)", gid, ob.user)
		return
	}
	c.stats.observerFrames.Add(1)
	ob.needFull = false
	ob.meeting = meeting
	if full {
		clear(ob.obsEpochs)
	}
	for _, d := range msg.Deltas {
		ob.obsEpochs[d.Member] = d.Epoch
	}
}

// handleReport is step 1: record the reporter's location and probe the
// others (step 2). With a group of one, replan immediately.
func (c *Coordinator) handleReport(msg Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[msg.Group]
	if g == nil || uint32(len(g.members)) != g.size {
		return
	}
	if _, ok := g.members[msg.User]; !ok {
		return
	}
	c.locs[msg.Group][msg.User] = msg.Loc
	if g.probing != nil {
		// A probe round is already in flight (e.g. two users escaped in
		// the same tick); the fresh location is recorded and the pending
		// round will cover it.
		delete(g.probing, msg.User)
		c.maybeReplanLocked(msg.Group, g)
		return
	}
	g.probing = map[uint32]bool{}
	for uid, other := range g.members {
		if uid == msg.User {
			continue
		}
		g.probing[uid] = true
		probe := Message{Type: TProbe, Group: msg.Group, User: uid}
		if other.compact {
			probe.Type = TProbeC
			c.stats.compactProbes.Add(1)
		}
		ok := other.send(probe)
		other.noteSend(c, msg.Group, ok)
		if !ok {
			c.logger.Printf("group %d: probe to user %d dropped (outbox full)", msg.Group, uid)
			delete(g.probing, uid)
		}
	}
	c.maybeReplanLocked(msg.Group, g)
}

// handleProbeReply is step 2b.
func (c *Coordinator) handleProbeReply(msg Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[msg.Group]
	if g == nil || g.probing == nil {
		return
	}
	if _, ok := g.members[msg.User]; ok {
		c.locs[msg.Group][msg.User] = msg.Loc
	}
	delete(g.probing, msg.User)
	c.maybeReplanLocked(msg.Group, g)
}

// maybeReplanLocked replans once all probe replies arrived.
func (c *Coordinator) maybeReplanLocked(gid uint32, g *group) {
	if g.probing == nil || len(g.probing) > 0 {
		return
	}
	g.probing = nil
	c.replanLocked(gid, g)
}

// replanLocked obtains and distributes a fresh plan (step 3): inline with
// the synchronous backend, via SubmitFunc + Deliver with the asynchronous
// one. Member order is by ascending user id so regions match
// deterministically.
func (c *Coordinator) replanLocked(gid uint32, g *group) {
	ids := memberIDs(g)
	users := make([]geom.Point, len(ids))
	for i, uid := range ids {
		users[i] = c.locs[gid][uid]
	}
	if c.submit != nil {
		if meeting, regions, epochs, ok := c.submit(gid, ids, users); ok && len(regions) == len(ids) {
			c.notifyLocked(gid, g, ids, meeting, regions, epochs)
		}
		return
	}
	meeting, regions, err := c.plan(users)
	if err != nil {
		c.logger.Printf("group %d: plan failed: %v", gid, err)
		for _, uid := range ids {
			g.members[uid].send(Message{Type: TError, Group: gid, Text: err.Error()})
		}
		return
	}
	c.notifyLocked(gid, g, ids, meeting, regions, nil)
}

// memberIDs returns a group's user ids in ascending order.
func memberIDs(g *group) []uint32 {
	ids := make([]uint32, 0, len(g.members))
	for uid := range g.members {
		ids = append(ids, uid)
	}
	sortU32(ids)
	return ids
}

// notifyLocked sends one notification per member, regions aligned with
// ids. Encodings go through the group's epoch-keyed cache, so a region
// unchanged since the last delivery is not re-encoded (with backend
// epochs the check is one integer compare — the kept path encodes
// nothing at all). Members that negotiated deltas receive a compact
// TNotifyDelta carrying only the records that changed since the
// server's last successful enqueue to them; everyone else — and any
// member whose previous frame was dropped — gets a full TNotify.
func (c *Coordinator) notifyLocked(gid uint32, g *group, ids []uint32, meeting geom.Point, regions []core.SafeRegion, epochs []uint64) {
	if len(epochs) != len(ids) {
		epochs = nil
	}
	if !sameIDs(ids, g.encIDs) {
		g.resetEncLocked(ids)
	}
	for i, uid := range ids {
		mb := g.members[uid]
		data, epoch := g.encodedRegion(uid, regions[i], epochs, i)
		if !c.delta || !mb.delta || mb.needFull {
			ok := mb.send(Message{
				Type: TNotify, Group: gid, User: uid,
				Meeting: meeting, Epoch: epoch, Region: data,
			})
			mb.recordSend(c, gid, ok, epoch, meeting)
			continue
		}
		msg := Message{Type: TNotifyDelta, Group: gid, User: uid, Epoch: epoch}
		if meeting != mb.meeting {
			msg.MeetingChanged = true
			msg.Meeting = meeting
		}
		if epoch != mb.epoch {
			msg.Deltas = []RegionDelta{{Member: uid, Epoch: epoch, Region: data}}
		}
		mb.recordSend(c, gid, mb.send(msg), epoch, meeting)
	}
	g.lastMeeting = meeting
	g.havePlan = true
	c.notifyObserversLocked(gid, g, meeting)
	c.logger.Printf("group %d: notified %d members, meeting at %v", gid, len(ids), meeting)
}

// recordSend updates the member's delivered-state tracking after a send
// attempt: success records what the client will hold; a drop forces the
// next delivery to be a full frame, since the server can no longer prove
// what the client holds.
func (m *member) recordSend(c *Coordinator, gid uint32, ok bool, epoch uint64, meeting geom.Point) {
	m.noteSend(c, gid, ok)
	if ok {
		m.needFull = false
		m.epoch = epoch
		m.meeting = meeting
		return
	}
	m.needFull = true
	c.logger.Printf("group %d: notify to user %d dropped (outbox full)", gid, m.user)
}

// encodedRegion returns the wire encoding of uid's region at slot i,
// reusing the cached bytes when the region is unchanged. With backend
// epochs the cache key is the epoch itself — an unchanged region is
// never re-encoded. Without epochs the region is encoded and compared
// against the cache, and the coordinator mints its own monotone epoch
// per change, so the delta machinery works (at full encode cost) over
// any backend.
func (g *group) encodedRegion(uid uint32, r core.SafeRegion, epochs []uint64, i int) ([]byte, uint64) {
	e := g.enc[uid]
	if epochs != nil {
		if e != nil && e.epoch == epochs[i] {
			return e.data, e.epoch
		}
		data := encodeRegion(r)
		g.enc[uid] = &encRegion{epoch: epochs[i], data: data}
		return data, epochs[i]
	}
	data := encodeRegion(r)
	if e != nil && bytes.Equal(e.data, data) {
		return e.data, e.epoch
	}
	epoch := uint64(1)
	if e != nil {
		epoch = e.epoch + 1
	}
	g.enc[uid] = &encRegion{epoch: epoch, data: data}
	return data, epoch
}

// handleNack is the client's repair request: it could not apply a delta
// frame (no retained region, or an epoch it cannot reconcile). Mark the
// member for full delivery and repair it immediately from the encoding
// cache — the cache always holds the group's latest distributed plan.
func (c *Coordinator) handleNack(msg Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[msg.Group]
	if g == nil {
		return
	}
	mb := g.members[msg.User]
	if mb == nil {
		if ob := g.observers[msg.User]; ob != nil {
			// An observer that cannot reconcile a frame asks for complete
			// state; repair it from the cache like any other NACK.
			ob.needFull = true
			if g.havePlan {
				c.stats.nackRepairs.Add(1)
				c.sendObserverLocked(msg.Group, g, ob, g.lastMeeting)
			}
		}
		return
	}
	mb.needFull = true
	e := g.enc[msg.User]
	if !g.havePlan || e == nil {
		return // no plan distributed yet; registration will deliver one
	}
	ok := mb.send(Message{
		Type: TNotify, Group: msg.Group, User: msg.User,
		Meeting: g.lastMeeting, Epoch: e.epoch, Region: e.data,
	})
	mb.recordSend(c, msg.Group, ok, e.epoch, g.lastMeeting)
	if ok {
		c.stats.nackRepairs.Add(1)
		c.logger.Printf("group %d: user %d nacked; repaired with full notify", msg.Group, msg.User)
	}
}

// removeMember drops a disconnected user (member or observer); an
// incomplete group stops replanning until it refills. When the last
// member leaves, the group dissolves and its observers are disconnected
// with it — there is nothing left to observe, and a future group under
// the same id is a different group.
func (c *Coordinator) removeMember(gid, uid uint32) {
	c.mu.Lock()
	g := c.groups[gid]
	var closing []*member
	if g != nil {
		if mb := g.members[uid]; mb != nil {
			closing = append(closing, mb)
			delete(g.members, uid)
			delete(c.locs[gid], uid)
			// Drop the cached encoding too: entries are only trustworthy for
			// the membership they were built under (see encIDs), and keeping
			// them would leak one region per departed uid in a long-lived
			// group with churning membership.
			delete(g.enc, uid)
			if g.probing != nil {
				delete(g.probing, uid)
				c.maybeReplanLocked(gid, g)
			}
			if len(g.members) == 0 {
				delete(c.groups, gid)
				delete(c.locs, gid)
				for ouid, ob := range g.observers {
					delete(g.observers, ouid)
					if ob.kick != nil {
						ob.kick()
					}
					closing = append(closing, ob)
				}
				if c.onEmpty != nil {
					// Under the lock: a re-registration of the same gid
					// cannot interleave with the backend teardown.
					c.onEmpty(gid)
				}
			}
		} else if ob := g.observers[uid]; ob != nil {
			closing = append(closing, ob)
			delete(g.observers, uid)
			if len(g.members) == 0 && len(g.observers) == 0 {
				// Observer-first group whose members never arrived: GC it.
				// No onEmpty — nothing was ever submitted to a backend.
				delete(c.groups, gid)
				delete(c.locs, gid)
			}
		}
	}
	c.mu.Unlock()
	for _, m := range closing {
		m.close()
	}
	c.logger.Printf("group %d: user %d left", gid, uid)
}

// NumGroups returns the live group count (for tests and monitoring).
func (c *Coordinator) NumGroups() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.groups)
}

func sortU32(xs []uint32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// EncodeRegion mirrors the public mpn.EncodeRegion format so clients of
// either layer interoperate: 25 bytes for a circle (tag byte + three
// float64s), the 'N'-tagged covered-segment codec for network range
// regions, the tileenc codec for tile regions. encodeRegion is the
// internal alias.
func EncodeRegion(r core.SafeRegion) []byte { return encodeRegion(r) }

func encodeRegion(r core.SafeRegion) []byte {
	if r.Kind == core.KindCircle {
		buf := make([]byte, 0, 25)
		buf = append(buf, 'C')
		buf = appendF(buf, r.Circle.C.X)
		buf = appendF(buf, r.Circle.C.Y)
		buf = appendF(buf, r.Circle.R)
		return buf
	}
	if r.Kind == core.KindNetRange {
		return r.Net.AppendEncode(nil)
	}
	delta := 0.0
	for _, t := range r.Tiles {
		if w := t.Width(); w > delta {
			delta = w
		}
	}
	return tileenc.Encode(r.Tiles, delta)
}

// DecodeRegion parses an encodeRegion payload back into a SafeRegion.
func DecodeRegion(data []byte) (core.SafeRegion, error) {
	if len(data) == 25 && data[0] == 'C' {
		return core.CircleRegion(geom.Pt(readF(data, 1), readF(data, 9)), readF(data, 17)), nil
	}
	if len(data) > 0 && data[0] == 'N' {
		nr, err := netmpn.DecodeRegion(data)
		if err != nil {
			return core.SafeRegion{}, err
		}
		return core.NetRegion(nr), nil
	}
	tiles, err := tileenc.Decode(data)
	if err != nil {
		return core.SafeRegion{}, err
	}
	return core.TileRegion(tiles...), nil
}
