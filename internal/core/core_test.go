package core

import (
	"math"
	"math/rand"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/gnn"
)

// --- helpers -------------------------------------------------------------

func randomPoints(n int, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

// samplePoint draws a uniform random point from a region.
func samplePoint(r SafeRegion, rng *rand.Rand) geom.Point {
	if r.Kind == KindCircle {
		// Uniform in disk by polar sampling.
		a := rng.Float64() * 2 * math.Pi
		d := r.Circle.R * math.Sqrt(rng.Float64())
		return geom.Pt(r.Circle.C.X+d*math.Cos(a), r.Circle.C.Y+d*math.Sin(a))
	}
	t := r.Tiles[rng.Intn(len(r.Tiles))]
	return geom.Pt(t.Min.X+rng.Float64()*t.Width(), t.Min.Y+rng.Float64()*t.Height())
}

// assertPlanSound draws random location instances from the plan's regions
// and checks that the reported meeting point remains optimal (up to ties)
// for each instance — the Definition 3 independence property.
func assertPlanSound(t *testing.T, points []geom.Point, plan Plan, agg gnn.Aggregate, rng *rand.Rand, samples int) {
	t.Helper()
	for s := 0; s < samples; s++ {
		inst := make([]geom.Point, len(plan.Regions))
		for i, r := range plan.Regions {
			inst[i] = samplePoint(r, rng)
		}
		poDist := agg.PointDist(plan.Best.Item.P, inst)
		best := math.Inf(1)
		for _, p := range points {
			if d := agg.PointDist(p, inst); d < best {
				best = d
			}
		}
		if poDist > best+1e-9 {
			t.Fatalf("sample %d: p° dist %v exceeds true optimum %v (instance %v)",
				s, poDist, best, inst)
		}
	}
}

func mustPlanner(t *testing.T, pts []geom.Point, opts Options) *Planner {
	t.Helper()
	pl, err := NewPlanner(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// --- Verify / Lemma 1 ----------------------------------------------------

func TestVerifyFig6a(t *testing.T) {
	// Fig. 6a style setup: verified regions imply p1 cannot replace p°.
	po := geom.Pt(0, 0)
	p1 := geom.Pt(10, 0)
	regions := []SafeRegion{
		CircleRegion(geom.Pt(1, 0), 0.5),
		CircleRegion(geom.Pt(-1, 0), 0.5),
		CircleRegion(geom.Pt(0, 1), 0.5),
	}
	if !Verify(regions, po, p1) {
		t.Fatal("clearly-safe configuration failed Verify")
	}
	// A competitor right on top of the users is not verifiable.
	if Verify(regions, po, geom.Pt(0.5, 0)) {
		t.Fatal("competitor inside the user cluster passed Verify")
	}
}

func TestVerifySoundness(t *testing.T) {
	// Whenever Verify accepts, every sampled instance must keep p° at
	// least as good as p.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		m := 2 + rng.Intn(3)
		regions := make([]SafeRegion, m)
		for i := range regions {
			if rng.Intn(2) == 0 {
				regions[i] = CircleRegion(geom.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.1)
			} else {
				var tiles []geom.Rect
				for k := 0; k <= rng.Intn(3); k++ {
					tiles = append(tiles, geom.RectAround(
						geom.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.1+0.01))
				}
				regions[i] = TileRegion(tiles...)
			}
		}
		po := geom.Pt(rng.Float64(), rng.Float64())
		p := geom.Pt(rng.Float64(), rng.Float64())
		if !Verify(regions, po, p) {
			continue
		}
		for s := 0; s < 50; s++ {
			inst := make([]geom.Point, m)
			for i := range inst {
				inst[i] = samplePoint(regions[i], rng)
			}
			if gnn.Max.PointDist(po, inst) > gnn.Max.PointDist(p, inst)+1e-9 {
				t.Fatalf("Verify accepted but instance favors p: po=%v p=%v", po, p)
			}
		}
	}
}

func TestVerifySumSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	accepted := 0
	for trial := 0; trial < 600; trial++ {
		m := 2 + rng.Intn(3)
		regions := make([]SafeRegion, m)
		for i := range regions {
			regions[i] = TileRegion(geom.RectAround(
				geom.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.15+0.01))
		}
		po := geom.Pt(rng.Float64(), rng.Float64())
		p := geom.Pt(rng.Float64(), rng.Float64())
		if !VerifySum(regions, po, p) {
			continue
		}
		accepted++
		for s := 0; s < 40; s++ {
			inst := make([]geom.Point, m)
			for i := range inst {
				inst[i] = samplePoint(regions[i], rng)
			}
			if gnn.Sum.PointDist(po, inst) > gnn.Sum.PointDist(p, inst)+1e-9 {
				t.Fatalf("VerifySum accepted but instance favors p")
			}
		}
	}
	if accepted == 0 {
		t.Fatal("VerifySum never accepted — test is vacuous")
	}
}

// --- GT-Verify vs IT-Verify ----------------------------------------------

func TestGTVerifyMatchesITVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	agree, disagreeConservative := 0, 0
	for trial := 0; trial < 3000; trial++ {
		m := 1 + rng.Intn(3)
		ts := tileSets{users: make([][]geom.Rect, m)}
		for i := range ts.users {
			cnt := 1 + rng.Intn(4)
			for k := 0; k < cnt; k++ {
				ts.users[i] = append(ts.users[i], geom.RectAround(
					geom.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.2+0.01))
			}
		}
		po := geom.Pt(rng.Float64(), rng.Float64())
		p := geom.Pt(rng.Float64(), rng.Float64())
		gt := gtVerifyMax(ts, po, p)
		it := itVerifyMax(ts, po, p)
		if gt == it {
			agree++
			continue
		}
		disagreeConservative++
		t.Fatalf("trial %d: gtVerify=%v itVerify=%v (m=%d)", trial, gt, it, m)
	}
	if agree == 0 {
		t.Fatal("no comparisons executed")
	}
	_ = disagreeConservative
}

// --- Circle-MSR ----------------------------------------------------------

func TestCircleMSRSound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(500, rng)
	for _, agg := range []gnn.Aggregate{gnn.Max, gnn.Sum} {
		opts := DefaultOptions()
		opts.Aggregate = agg
		pl := mustPlanner(t, pts, opts)
		for trial := 0; trial < 25; trial++ {
			users := randomPoints(2+rng.Intn(4), rng)
			plan, err := pl.CircleMSR(users)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Regions) != len(users) {
				t.Fatalf("region count %d != users %d", len(plan.Regions), len(users))
			}
			for i, r := range plan.Regions {
				if r.Kind != KindCircle {
					t.Fatal("CircleMSR produced non-circle")
				}
				if !r.Contains(users[i]) {
					t.Fatal("region does not contain its user")
				}
			}
			assertPlanSound(t, pts, plan, agg, rng, 60)
		}
	}
}

// Theorem 1 tightness: enlarging the radius beyond rmax must admit an
// instance where the runner-up wins, for a handcrafted collinear example.
func TestCircleMSRMaximality(t *testing.T) {
	// Users at 0 and 1 on the x axis; POIs at 0.5 (optimal) and 2.
	pts := []geom.Point{geom.Pt(0.5, 0), geom.Pt(2, 0)}
	users := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	pl := mustPlanner(t, pts, DefaultOptions())
	plan, err := pl.CircleMSR(users)
	if err != nil {
		t.Fatal(err)
	}
	r := plan.Regions[0].Circle.R
	// ‖p°,U‖max = 0.5; ‖p²,U‖max = 2 ⇒ rmax = 0.75.
	if math.Abs(r-0.75) > 1e-12 {
		t.Fatalf("rmax=%v want 0.75", r)
	}
	// With radius rmax the extreme instance (both users pushed toward p²)
	// still ties or favors p°.
	u1 := geom.Pt(0+r, 0)
	u2 := geom.Pt(1+r, 0)
	inst := []geom.Point{u1, u2}
	if gnn.Max.PointDist(pts[0], inst) > gnn.Max.PointDist(pts[1], inst)+1e-9 {
		t.Fatal("rmax circle admits a losing instance")
	}
	// A 1% larger radius breaks it.
	r2 := r * 1.01
	inst = []geom.Point{geom.Pt(r2, 0), geom.Pt(1+r2, 0)}
	if gnn.Max.PointDist(pts[0], inst) <= gnn.Max.PointDist(pts[1], inst) {
		t.Fatal("enlarged radius should admit a losing instance")
	}
}

func TestCircleMSRSinglePOI(t *testing.T) {
	pl := mustPlanner(t, []geom.Point{geom.Pt(0.5, 0.5)}, DefaultOptions())
	plan, err := pl.CircleMSR([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	// The sole POI can never be displaced: radius should be effectively
	// unbounded.
	if plan.Regions[0].Circle.R < 1e6 {
		t.Fatalf("single-POI radius %v too small", plan.Regions[0].Circle.R)
	}
}

func TestCircleMSRNoUsers(t *testing.T) {
	pl := mustPlanner(t, randomPoints(10, rand.New(rand.NewSource(5))), DefaultOptions())
	if _, err := pl.CircleMSR(nil); err != ErrNoUsers {
		t.Fatalf("want ErrNoUsers, got %v", err)
	}
	if _, err := pl.TileMSR(nil, nil); err != ErrNoUsers {
		t.Fatalf("want ErrNoUsers, got %v", err)
	}
}

// --- Tile-MSR ------------------------------------------------------------

func tileOpts(mod func(*Options)) Options {
	o := DefaultOptions()
	o.TileLimit = 10
	o.SplitLevel = 2
	if mod != nil {
		mod(&o)
	}
	return o
}

func TestTileMSRSoundMax(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, tileOpts(nil))
	for trial := 0; trial < 10; trial++ {
		users := randomPoints(3, rng)
		plan, err := pl.TileMSR(users, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range plan.Regions {
			if !r.Contains(users[i]) {
				t.Fatalf("region %d misses its user", i)
			}
		}
		assertPlanSound(t, pts, plan, gnn.Max, rng, 80)
	}
}

func TestTileMSRSoundSum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, tileOpts(func(o *Options) { o.Aggregate = gnn.Sum }))
	for trial := 0; trial < 8; trial++ {
		users := randomPoints(3, rng)
		plan, err := pl.TileMSR(users, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertPlanSound(t, pts, plan, gnn.Sum, rng, 80)
	}
}

func TestTileMSRSoundDirected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, tileOpts(func(o *Options) {
		o.Directed = true
		o.Theta = math.Pi / 3
	}))
	for trial := 0; trial < 8; trial++ {
		users := randomPoints(3, rng)
		dirs := []Direction{
			{Angle: rng.Float64() * math.Pi, Theta: math.Pi / 3},
			{Angle: rng.Float64() * math.Pi}, // falls back to Options.Theta
			{Angle: rng.Float64() * math.Pi, Theta: math.Pi / 2},
		}
		plan, err := pl.TileMSR(users, dirs)
		if err != nil {
			t.Fatal(err)
		}
		assertPlanSound(t, pts, plan, gnn.Max, rng, 80)
	}
}

func TestTileMSRSoundBufferedMax(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, tileOpts(func(o *Options) { o.Buffer = 20 }))
	for trial := 0; trial < 8; trial++ {
		users := randomPoints(3, rng)
		plan, err := pl.TileMSR(users, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Stats.IndexAccesses != 1 {
			t.Fatalf("buffered run should access the index once, got %d", plan.Stats.IndexAccesses)
		}
		assertPlanSound(t, pts, plan, gnn.Max, rng, 80)
	}
}

func TestTileMSRSoundBufferedSum(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, tileOpts(func(o *Options) {
		o.Buffer = 20
		o.Aggregate = gnn.Sum
	}))
	for trial := 0; trial < 6; trial++ {
		users := randomPoints(3, rng)
		plan, err := pl.TileMSR(users, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertPlanSound(t, pts, plan, gnn.Sum, rng, 80)
	}
}

func TestTileMSRSoundITVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(150, rng)
	pl := mustPlanner(t, pts, tileOpts(func(o *Options) {
		o.GroupVerify = false
		o.TileLimit = 5
	}))
	users := randomPoints(2, rng)
	plan, err := pl.TileMSR(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertPlanSound(t, pts, plan, gnn.Max, rng, 60)
}

func TestTileMSRSoundNoPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts := randomPoints(150, rng)
	pl := mustPlanner(t, pts, tileOpts(func(o *Options) {
		o.IndexPruning = false
		o.TileLimit = 5
	}))
	users := randomPoints(3, rng)
	plan, err := pl.TileMSR(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertPlanSound(t, pts, plan, gnn.Max, rng, 60)
}

// Tile regions must dominate the circle regions they grow from: the
// inscribed seed square plus accepted tiles should cover at least the
// inscribed square of the rmax circle.
func TestTileSeedCoversInscribedSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randomPoints(200, rng)
	optsT := tileOpts(nil)
	pl := mustPlanner(t, pts, optsT)
	users := randomPoints(3, rng)
	circle, err := pl.CircleMSR(users)
	if err != nil {
		t.Fatal(err)
	}
	tiles, err := pl.TileMSR(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range users {
		sq := circle.Regions[i].Circle.InscribedSquare()
		if tiles.Regions[i].IsEmpty() {
			t.Fatalf("empty tile region %d", i)
		}
		seed := tiles.Regions[i].Tiles[0]
		if math.Abs(seed.Width()-sq.Width()) > 1e-9 {
			t.Fatalf("seed width %v != inscribed square width %v", seed.Width(), sq.Width())
		}
	}
}

func TestTileMSRTieDegenerate(t *testing.T) {
	// Two POIs equidistant from the single user: rmax = 0.
	pts := []geom.Point{geom.Pt(-1, 0), geom.Pt(1, 0)}
	pl := mustPlanner(t, pts, tileOpts(nil))
	plan, err := pl.TileMSR([]geom.Point{geom.Pt(0, 0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := plan.Regions[0]
	if !r.Contains(geom.Pt(0, 0)) {
		t.Fatal("degenerate region must contain the user")
	}
	if r.MaxExtent(geom.Pt(0, 0)) != 0 {
		t.Fatal("degenerate region should have zero extent")
	}
}

// --- Stats & options -----------------------------------------------------

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{TileLimit: -1},
		{SplitLevel: -2},
		{Buffer: -1},
		{Directed: true, Theta: 0},
		{Directed: true, Theta: 4},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPlannerErrors(t *testing.T) {
	if _, err := NewPlanner(nil, DefaultOptions()); err != ErrNoPOIs {
		t.Fatalf("want ErrNoPOIs, got %v", err)
	}
	o := DefaultOptions()
	o.TileLimit = -5
	if _, err := NewPlanner(randomPoints(3, rand.New(rand.NewSource(14))), o); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{GNNCalls: 1, IndexAccesses: 2, CandidatesChecked: 3, TileVerifies: 4, TilesAccepted: 5, TilesRejected: 6}
	b := a
	a.Add(b)
	if a.GNNCalls != 2 || a.IndexAccesses != 4 || a.CandidatesChecked != 6 ||
		a.TileVerifies != 8 || a.TilesAccepted != 10 || a.TilesRejected != 12 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestBufferedFewerPOIsThanBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pts := randomPoints(5, rng)
	pl := mustPlanner(t, pts, tileOpts(func(o *Options) { o.Buffer = 50 }))
	users := randomPoints(3, rng)
	plan, err := pl.TileMSR(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertPlanSound(t, pts, plan, gnn.Max, rng, 60)
}

// --- region type ----------------------------------------------------------

func TestSafeRegionDistances(t *testing.T) {
	r := TileRegion(
		geom.RectAround(geom.Pt(0, 0), 1),
		geom.RectAround(geom.Pt(3, 0), 1),
	)
	p := geom.Pt(1.5, 0)
	if got := r.MinDist(p); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MinDist=%v want 1", got)
	}
	if got := r.MaxDist(p); math.Abs(got-math.Hypot(2, 0.5)) > 1e-12 {
		t.Fatalf("MaxDist=%v", got)
	}
	if !r.Contains(geom.Pt(0.5, 0.5)) || r.Contains(geom.Pt(2, 2)) {
		t.Fatal("Contains wrong")
	}
	if r.NumTiles() != 2 {
		t.Fatal("NumTiles")
	}
	br := r.BoundingRect()
	want := geom.Rect{Min: geom.Pt(-0.5, -0.5), Max: geom.Pt(3.5, 0.5)}
	if br != want {
		t.Fatalf("BoundingRect=%v want %v", br, want)
	}
	c := CircleRegion(geom.Pt(0, 0), 2)
	if c.NumTiles() != 0 || c.IsEmpty() {
		t.Fatal("circle region properties")
	}
	if got := c.MaxExtent(geom.Pt(0, 0)); got != 2 {
		t.Fatalf("circle MaxExtent=%v", got)
	}
}

func TestRegionKindString(t *testing.T) {
	if KindCircle.String() != "circle" || KindTiles.String() != "tiles" {
		t.Fatal("RegionKind.String")
	}
	if CircleRegion(geom.Pt(0, 0), 1).String() == "" || TileRegion().String() == "" {
		t.Fatal("SafeRegion.String")
	}
}

// --- ordering -------------------------------------------------------------

func TestRingCellCoverage(t *testing.T) {
	for k := 1; k <= 5; k++ {
		seen := map[[2]int]bool{}
		for i := 0; i < ringLength(k); i++ {
			gx, gy := ringCell(k, i)
			if max(abs(gx), abs(gy)) != k {
				t.Fatalf("layer %d pos %d: cell (%d,%d) not on ring", k, i, gx, gy)
			}
			key := [2]int{gx, gy}
			if seen[key] {
				t.Fatalf("layer %d: duplicate cell (%d,%d)", k, gx, gy)
			}
			seen[key] = true
		}
		if len(seen) != 8*k {
			t.Fatalf("layer %d: %d unique cells want %d", k, len(seen), 8*k)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestOrderingTermination(t *testing.T) {
	// Without acceptances past the first layer the ordering must stop.
	o := newTileOrdering(geom.Pt(0, 0), 1, 100, false, 0, 0)
	count := 0
	for {
		_, ok := o.next()
		if !ok {
			break
		}
		count++
		if count > 8 {
			t.Fatal("ordering did not stop after one unaccepted layer")
		}
	}
	if count != 8 {
		t.Fatalf("expected the 8 tiles of layer 1, got %d", count)
	}
}

func TestOrderingGrowsWithAcceptance(t *testing.T) {
	o := newTileOrdering(geom.Pt(0, 0), 1, 3, false, 0, 0)
	count := 0
	for {
		_, ok := o.next()
		if !ok {
			break
		}
		o.markAccepted()
		count++
	}
	// Layers 1..3 fully enumerated: 8+16+24.
	if count != 48 {
		t.Fatalf("got %d tiles want 48", count)
	}
}

func TestDirectedOrderingSubset(t *testing.T) {
	undirected := map[geom.Rect]bool{}
	o1 := newTileOrdering(geom.Pt(0, 0), 1, 2, false, 0, 0)
	for {
		s, ok := o1.next()
		if !ok {
			break
		}
		o1.markAccepted()
		undirected[s] = true
	}
	o2 := newTileOrdering(geom.Pt(0, 0), 1, 2, true, 0, math.Pi/4)
	directedCount := 0
	for {
		s, ok := o2.next()
		if !ok {
			break
		}
		o2.markAccepted()
		directedCount++
		if !undirected[s] {
			t.Fatalf("directed tile %v not in undirected set", s)
		}
	}
	if directedCount == 0 || directedCount >= len(undirected) {
		t.Fatalf("directed should be a strict non-empty subset: %d of %d",
			directedCount, len(undirected))
	}
	// East-pointing heading must keep the east neighbor tile.
	o3 := newTileOrdering(geom.Pt(0, 0), 1, 1, true, 0, math.Pi/6)
	found := false
	for {
		s, ok := o3.next()
		if !ok {
			break
		}
		if s.Center() == geom.Pt(1, 0) {
			found = true
		}
	}
	if !found {
		t.Fatal("east tile missing from east-heading cone")
	}
}
