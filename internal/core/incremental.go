package core

import (
	"math"
	"sort"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/nbrcache"
)

// IncOutcome reports how an incremental replanning call satisfied an
// update.
type IncOutcome int

const (
	// IncFull means the whole plan was recomputed from scratch: the
	// retained state was missing or stale, the result set churned, the
	// optimum was degenerate, or a partial regrow could not cover a
	// reporting user. Full-replan output is byte-identical to the
	// corresponding TileMSRInto/CircleMSRInto call.
	IncFull IncOutcome = iota
	// IncPartial means the result set was unchanged and only the dirty
	// users — those whose reported location escaped their retained region
	// — had their regions regrown; every clean member kept her region
	// verbatim.
	IncPartial
	// IncKept means the result set was unchanged and every member is
	// still inside her retained region: the entire previous plan remains
	// valid and was returned as-is (regions alias the retained plan).
	IncKept
)

// String implements fmt.Stringer.
func (o IncOutcome) String() string {
	switch o {
	case IncPartial:
		return "partial"
	case IncKept:
		return "kept"
	default:
		return "full"
	}
}

// PlanState is the retained outcome of a group's last safe-region
// computation: the result-set identity and the exported regions the
// incremental planners validate against. The zero value is ready to use
// and invalid, so the first computation through it replans fully. A
// PlanState is not safe for concurrent use; the engine guards each
// group's state with the group's replan lock.
//
// Alongside the regions the state maintains one monotone epoch per
// member slot (see Epochs): the epoch advances exactly when that slot's
// region content changes, so downstream consumers — the wire
// coordinator's delta notifications, encoded-region caches — can tell
// "this member's region is byte-identical to the last plan" without
// comparing (or re-encoding) the regions themselves. A kept plan
// advances no epoch; a partial regrow advances only the regrown
// members'.
type PlanState struct {
	valid   bool
	bestID  int
	version uint64 // index version the retained plan was computed against
	regions []SafeRegion
	epochs  []uint64
}

// Valid reports whether the state holds a retained plan.
func (st *PlanState) Valid() bool { return st.valid }

// Invalidate drops the retained plan, forcing the next incremental call
// down the full-replan path — the escape hatch behind forced-full
// updates. The epoch vector survives, so slots keep advancing
// monotonically across the forced replan.
func (st *PlanState) Invalidate() {
	st.valid = false
	st.regions = nil
}

// Regions exposes the retained regions (read-only; they are exported
// plan copies).
func (st *PlanState) Regions() []SafeRegion { return st.regions }

// Epochs exposes the per-member region epochs, parallel to Regions: a
// slot's epoch advances exactly when Record observes that slot's region
// content change (a kept plan records nothing, so kept regions never
// advance). The slice is the state's own — read-only, valid until the
// next Record; copy it before publishing across goroutines.
func (st *PlanState) Epochs() []uint64 { return st.epochs }

// Record retains a freshly computed plan as the state to validate the
// next update against, advancing the epoch of every member slot whose
// region content changed. The incremental planners call it on every
// non-kept outcome; custom engine.ReplanWSFunc implementations use it
// the same way. Exported plans never alias workspace memory, so holding
// them across computations is safe.
func (st *PlanState) Record(p Plan) {
	st.bumpEpochs(p.Regions)
	st.valid = true
	st.bestID = p.Best.Item.ID
	st.version = p.Stats.IndexVersion
	st.regions = p.Regions
}

// bumpEpochs advances the epoch of every slot whose fresh region
// differs from the retained one. With no retained plan to compare
// against (first record, after Invalidate, or membership churn) every
// slot advances — the safe direction: an epoch that advances without a
// content change costs one redundant region send; an epoch that fails
// to advance on a change would freeze a stale region at the client.
func (st *PlanState) bumpEpochs(fresh []SafeRegion) {
	if len(st.epochs) != len(fresh) {
		// Membership churn: slot identity changed, restart the vector
		// past the old maximum so every slot stays monotone.
		base := uint64(0)
		for _, e := range st.epochs {
			if e > base {
				base = e
			}
		}
		st.epochs = make([]uint64, len(fresh))
		for i := range st.epochs {
			st.epochs[i] = base + 1
		}
		return
	}
	prev := st.regions
	if !st.valid {
		prev = nil
	}
	for i := range fresh {
		if prev == nil || !regionEqual(prev[i], fresh[i]) {
			st.epochs[i]++
		}
	}
}

// regionEqual reports whether two regions have identical content (the
// property the epoch tracks). Tile slices sharing a backing array are
// equal without element comparison — the common case for regions a
// partial regrow kept verbatim.
func regionEqual(a, b SafeRegion) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == KindCircle {
		return a.Circle == b.Circle
	}
	if a.Kind == KindNetRange {
		// Kept network regions alias the retained payload, so the pointer
		// fast path covers the steady state.
		if a.Net == b.Net {
			return true
		}
		return a.Net != nil && b.Net != nil && a.Net.EqualRegion(b.Net)
	}
	if len(a.Tiles) != len(b.Tiles) {
		return false
	}
	if len(a.Tiles) == 0 || &a.Tiles[0] == &b.Tiles[0] {
		return true
	}
	for i := range a.Tiles {
		if a.Tiles[i] != b.Tiles[i] {
			return false
		}
	}
	return true
}

// TileMSRIncInto is the incremental variant of TileMSRInto: it maintains
// st across calls and recomputes only what the reported locations
// invalidate.
//
// Every call recomputes the top-k GNN result set at the fresh locations
// (one index traversal — the irreducible cost of knowing the optimum
// moved). Then:
//
//   - If st holds no plan, the optimum POI changed, or the safe radius is
//     degenerate, the regions are regrown from scratch (IncFull),
//     byte-identical to a TileMSRInto call.
//   - Otherwise members are re-verified by containment: a member whose
//     reported location escaped her retained region is dirty. With no
//     dirty members the whole retained plan is still a valid safe-region
//     set and is returned as-is (IncKept).
//   - Otherwise only the dirty members' regions are regrown (IncPartial):
//     clean members keep their tiles verbatim and the grower verifies
//     every new tile against the mixed region set.
//
// Soundness of the partial regrow: a tile-region set is a valid safe
// region set for p° iff every tile group ⟨s1∈T1,…,sm∈Tm⟩ passes the
// group verification against every candidate POI — a property of the
// tiles, p°, and the candidates alone, independent of where the users
// currently stand. A complete group contains one tile per user, so it
// contains a tile from every dirty user's new region; consider the tile
// among those that was accepted LAST. At its acceptance, every other
// member of the group was already present in the hypothetical region
// set, so its Divide-Verify checked exactly this group, against
// candidates collected fresh under the Theorem 3/6 pruning bounds (or
// excluded fresh by the Theorem 4/7 buffer thresholds) evaluated at the
// current locations and the mixed hypothetical regions. Every complete
// (group, candidate) pair is therefore either verified or provably
// irrelevant, with no reliance on the previous run's (stale) candidate
// exclusions. The transitivity matters: a tile accepted EARLIER — in
// particular a seed accepted while another dirty user's set was still
// empty, which both verifiers pass vacuously (no complete group exists
// yet) — is NOT fully vetted by its own acceptance; it is covered
// because every complete group through it also contains a later-accepted
// tile whose check saw it. Unlike a full run, the dirty user's seed tile
// is still submitted to Divide-Verify rather than inserted by fiat —
// Theorem 1 covers the unverified seed only when all regions fit the
// fresh safe radius, which retained regions need not. If the regrown
// region fails to cover the reporting user (the retained regions left it
// no room under the fresh thresholds), the call falls back to a full
// replan, which shrinks everyone.
//
// The returned plan is exported by copy except on IncKept, where
// Plan.Regions aliases the retained (immutable, previously exported)
// regions.
//
// Deprecated: use Plan with a KindTiles PlanRequest carrying the state.
func (pl *Planner) TileMSRIncInto(ws *Workspace, st *PlanState, users []geom.Point, dirs []Direction) (Plan, IncOutcome, error) {
	return pl.Plan(ws, PlanRequest{Kind: KindTiles, Users: users, Dirs: dirs, State: st})
}

// TileMSRIncCachedInto is TileMSRIncInto with every top-k retrieval —
// the per-update result-set check and any full-replan fallback —
// routed through the shared neighborhood cache. Outcomes and plans are
// byte-identical to TileMSRIncInto's. A nil cache degrades to
// TileMSRIncInto.
//
// Deprecated: use Plan with a KindTiles PlanRequest carrying the state
// and cache.
func (pl *Planner) TileMSRIncCachedInto(ws *Workspace, cache *nbrcache.Cache, st *PlanState, users []geom.Point, dirs []Direction) (Plan, IncOutcome, error) {
	return pl.Plan(ws, PlanRequest{Kind: KindTiles, Users: users, Dirs: dirs, Cache: cache, State: st})
}

func (pl *Planner) tileMSRInc(ws *Workspace, cache *nbrcache.Cache, st *PlanState, users []geom.Point, dirs []Direction) (Plan, IncOutcome, error) {
	if len(users) == 0 {
		return Plan{}, IncFull, ErrNoUsers
	}
	if len(dirs) != len(users) {
		dirs = nil
	}
	// One snapshot for the whole update, fallbacks included: every
	// traversal of this call — the result-set check, a partial regrow,
	// and any full replan it degrades to — sees the same index state.
	snap := pl.Acquire()
	defer snap.Release()
	if !st.usable(snap.version, users, KindTiles) {
		plan, err := pl.tileMSRSnap(ws, cache, snap, users, dirs)
		if err != nil {
			return plan, IncFull, err
		}
		st.Record(plan)
		return plan, IncFull, nil
	}

	var plan Plan
	plan.Stats.IndexVersion = snap.version
	ws.topk = pl.lookupTopK(ws, cache, snap, users, pl.topK())
	plan.Stats.GNNCalls++
	plan.Best = ws.topk[0]

	if plan.Best.Item.ID != st.bestID || pl.circleRadius(users, ws.topk) <= 0 {
		// Result-set churn (or a degenerate tie): every region must
		// regrow around the new optimum.
		pl.growTiles(ws, snap, &plan, users, dirs, ws.topk, nil, nil)
		st.Record(plan)
		return plan, IncFull, nil
	}

	dirty := ws.resizeDirty(len(users))
	ndirty := 0
	for i, u := range users {
		d := !st.regions[i].Contains(u)
		dirty[i] = d
		if d {
			ndirty++
		}
	}
	if ndirty == 0 {
		plan.Regions = st.regions
		return plan, IncKept, nil
	}

	retained := st.regions
	if pl.regrowPredictedSlower(retained, dirty, len(users)) {
		// Cost remedy: the retained regions carry so many tiles that
		// regrowing the dirty members against them is predicted to cost
		// more than replanning everyone. Shrinking the clean regions to
		// the fresh-frontier budget removes the overhang — a subset of a
		// valid tile-region set is itself valid — so the partial regrow
		// proceeds against the trimmed set instead of being abandoned.
		retained = pl.shrinkRetained(ws, retained, users, dirty)
	}

	pl.growTiles(ws, snap, &plan, users, dirs, ws.topk, retained, dirty)
	for i, u := range users {
		if dirty[i] && !plan.Regions[i].Contains(u) {
			// Carry the wasted partial work's counters into the full
			// replan's stats: it is work this update really performed.
			full := Plan{Best: plan.Best, Stats: plan.Stats}
			pl.growTiles(ws, snap, &full, users, dirs, ws.topk, nil, nil)
			st.Record(full)
			return full, IncFull, nil
		}
	}
	st.Record(plan)
	return plan, IncPartial, nil
}

// shrinkRetained trims every clean member's retained region to the tile
// budget a fresh plan would build for her (TileLimit+1: the seed plus
// one accepted tile per round), keeping the tiles nearest her reported
// location. Dropping tiles from a valid tile-region set never breaks
// the group-verification property — every tile group over the shrunk
// set is a group over the original — so the result is still a valid
// region set for the unchanged optimum; it only cedes territory. The
// member's containing tile is always kept (she must remain inside her
// own region or the partial outcome would misreport her as dirty), and
// surviving tiles keep their original order. Regions already within
// budget, and dirty members' regions (regrown from scratch anyway),
// pass through verbatim; when nothing exceeds the budget the input
// slice is returned as-is. The returned regions are backed by workspace
// scratch — valid only until growTiles copies them out.
func (pl *Planner) shrinkRetained(ws *Workspace, retained []SafeRegion, users []geom.Point, dirty []bool) []SafeRegion {
	budget := pl.opts.TileLimit + 1
	over := false
	for i := range retained {
		if !dirty[i] && len(retained[i].Tiles) > budget {
			over = true
			break
		}
	}
	if !over {
		return retained
	}

	out := ws.resizeShrunk(len(retained))
	total := 0
	for i := range retained {
		if !dirty[i] && len(retained[i].Tiles) > budget {
			total += budget
		}
	}
	arena := grown(ws.shrinkTiles, total)[:0]
	for i := range retained {
		tiles := retained[i].Tiles
		if dirty[i] || len(tiles) <= budget {
			out[i] = retained[i]
			continue
		}
		u := users[i]

		// Rank tiles by distance from the user, stably by original index.
		sel := &ws.shrinkSel
		sel.c = grown(sel.c, len(tiles))
		for j, s := range tiles {
			sel.c[j] = shrinkCand{d: s.MinDist(u), idx: j}
		}
		sort.Sort(sel)

		// Keep the budget nearest, forcing the member's containing tile
		// into the cut if distance ranking alone dropped it. (A clean
		// member has one by definition; ranking can only exclude it on
		// boundary ties, where several tiles are at distance zero.)
		keep := ws.shrinkIdx[:0]
		contained := false
		for _, c := range sel.c[:budget] {
			keep = append(keep, c.idx)
			if !contained && tiles[c.idx].Contains(u) {
				contained = true
			}
		}
		if !contained {
			for _, c := range sel.c[budget:] {
				if tiles[c.idx].Contains(u) {
					keep[len(keep)-1] = c.idx
					break
				}
			}
		}
		ws.shrinkIdx = keep

		// Emit the survivors in their original region order.
		sortInts(keep)
		start := len(arena)
		for _, j := range keep {
			arena = append(arena, tiles[j])
		}
		out[i] = SafeRegion{Kind: KindTiles, Tiles: arena[start:len(arena):len(arena)]}
	}
	ws.shrinkTiles = arena
	return out
}

// sortInts insertion-sorts a small index slice in place (budget-sized:
// a few dozen elements at most).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// regrowPredictedSlower is the up-front cost heuristic of the partial
// regrow (see Options.IncCostRatio): it compares the retained clean
// regions' tile count against the frontier a fresh plan would build —
// about TileLimit+1 tiles per member. Every tile the dirty members
// submit is verified against hypothetical groups over the retained
// tiles (and, for SUM, rebuilds their memo minima), so when the
// retained set outweighs the fresh frontier the partial regrow does
// more verification work per accepted tile than a full replan spends in
// total. When the heuristic fires the planner no longer abandons the
// partial path: it shrinks the oversized clean regions down to the
// fresh-frontier budget (see shrinkRetained) and regrows the dirty
// members against the trimmed set, which bounds the per-tile
// verification cost by construction. Calibration on the cmd/mpnbench
// escape workload (21,287 POIs, α=10, b=50, minimal-escape
// oscillation): kept/frontier was 0.97 at m=3 and 0.95 at m=5 — where
// the untrimmed partial regrow wins 1.4–1.9× — but 1.25 at m=4, where
// displaced-geometry candidates made the untrimmed partial ~2.1×
// SLOWER than replanning (2.44ms vs 1.17ms per update);
// DefaultIncCostRatio sits between the two regimes.
func (pl *Planner) regrowPredictedSlower(retained []SafeRegion, dirty []bool, m int) bool {
	ratio := pl.opts.IncCostRatio
	if ratio < 0 {
		return false
	}
	if ratio == 0 {
		ratio = DefaultIncCostRatio
	}
	kept := 0
	for i := range retained {
		if !dirty[i] {
			kept += len(retained[i].Tiles)
		}
	}
	frontier := float64(m) * float64(pl.opts.TileLimit+1)
	return float64(kept) > ratio*frontier
}

// CircleMSRIncInto is the incremental variant of CircleMSRInto. The top-2
// GNN is recomputed on every call (it is nearly the entire cost of circle
// planning); the incremental win is keeping clean members' circles so
// only dirty members receive new regions over the wire.
//
// Soundness of the mixed circle set: let ρ'_i be the maximum distance
// from user i's current location to her region and gap the fresh top-2
// aggregate spread ‖p²,U‖ − ‖p°,U‖. For any locations L inside the
// regions and any POI p ∉ {p°},
//
//	MAX:  ‖p°,L‖max ≤ ‖p°,U‖max + max_i ρ'_i,  ‖p,L‖max ≥ ‖p²,U‖max − max_i ρ'_i
//	SUM:  the same with sums and Σ_i ρ'_i,
//
// so the mixed set is safe when max_i ρ'_i ≤ gap/2 (MAX) or
// Σ_i ρ'_i ≤ gap/2 (SUM) — the Theorem 1/5 conditions restated from the
// current locations. A dirty member's fresh circle contributes exactly
// the common radius r (gap/2 under MAX, gap/(2m) under SUM); a clean
// member's retained circle contributes its radius plus her drift from
// the center. When the condition fails the call falls back to a full
// replan, handing everyone fresh circles.
//
// Deprecated: use Plan with a KindCircle PlanRequest carrying the state.
func (pl *Planner) CircleMSRIncInto(ws *Workspace, st *PlanState, users []geom.Point) (Plan, IncOutcome, error) {
	return pl.Plan(ws, PlanRequest{Kind: KindCircle, Users: users, State: st})
}

// CircleMSRIncCachedInto is CircleMSRIncInto with the top-2 retrieval
// routed through the shared neighborhood cache; outcomes and plans are
// byte-identical to CircleMSRIncInto's. A nil cache degrades to
// CircleMSRIncInto.
//
// Deprecated: use Plan with a KindCircle PlanRequest carrying the state
// and cache.
func (pl *Planner) CircleMSRIncCachedInto(ws *Workspace, cache *nbrcache.Cache, st *PlanState, users []geom.Point) (Plan, IncOutcome, error) {
	return pl.Plan(ws, PlanRequest{Kind: KindCircle, Users: users, Cache: cache, State: st})
}

func (pl *Planner) circleMSRInc(ws *Workspace, cache *nbrcache.Cache, st *PlanState, users []geom.Point) (Plan, IncOutcome, error) {
	if len(users) == 0 {
		return Plan{}, IncFull, ErrNoUsers
	}
	snap := pl.Acquire()
	defer snap.Release()
	var plan Plan
	plan.Stats.IndexVersion = snap.version
	ws.topk = pl.lookupTopK(ws, cache, snap, users, 2)
	plan.Stats.GNNCalls++
	plan.Best = ws.topk[0]
	r := pl.circleRadius(users, ws.topk)

	full := func() (Plan, IncOutcome, error) {
		plan.Regions = make([]SafeRegion, len(users))
		for i, u := range users {
			plan.Regions[i] = CircleRegion(u, r)
		}
		st.Record(plan)
		return plan, IncFull, nil
	}

	if !st.usable(snap.version, users, KindCircle) || plan.Best.Item.ID != st.bestID || r <= 0 {
		return full()
	}

	gap := math.Inf(1)
	if len(ws.topk) >= 2 {
		gap = ws.topk[1].Dist - ws.topk[0].Dist
		if gap < 0 {
			gap = 0
		}
	}
	ndirty := 0
	var maxRho, sumRho float64
	for i, u := range users {
		rho := r
		if st.regions[i].Contains(u) {
			rho = st.regions[i].MaxDist(u)
		} else {
			ndirty++
		}
		if rho > maxRho {
			maxRho = rho
		}
		sumRho += rho
	}
	safe := maxRho <= gap/2
	if pl.opts.Aggregate == gnn.Sum {
		safe = sumRho <= gap/2
	}
	if !safe {
		return full()
	}
	if ndirty == 0 {
		plan.Regions = st.regions
		return plan, IncKept, nil
	}

	regions := make([]SafeRegion, len(users))
	for i, u := range users {
		if st.regions[i].Contains(u) {
			regions[i] = st.regions[i]
		} else {
			regions[i] = CircleRegion(u, r)
		}
	}
	plan.Regions = regions
	st.Record(plan)
	return plan, IncPartial, nil
}

// usable reports whether the retained state can seed an incremental run
// against the given snapshot version for the given group shape and
// region kind. Size mismatches (membership churn) and kind mismatches
// force a full replan; so does any POI mutation since the retained plan
// was recorded (st.version != version) — the retained regions were
// verified against a candidate set the mutation may have changed, so
// their tiles carry no guarantee under the fresh snapshot.
// Usable is the exported form of the retained-state gate for planning
// backends outside core (see NetBackend): implementations run the same
// check the built-in incremental planners do before trusting st.
func (st *PlanState) Usable(version uint64, users []geom.Point, kind RegionKind) bool {
	return st.usable(version, users, kind)
}

// BestID returns the retained result-set identity (the POI id Record
// saved from Plan.Best); meaningless unless Valid.
func (st *PlanState) BestID() int { return st.bestID }

func (st *PlanState) usable(version uint64, users []geom.Point, kind RegionKind) bool {
	if !st.valid || st.version != version || len(st.regions) != len(users) {
		return false
	}
	for i := range st.regions {
		if st.regions[i].Kind != kind {
			return false
		}
	}
	return true
}
