package core

import (
	"math/rand"
	"reflect"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/gnn"
)

// wsTestPOIs is a fixed random POI set shared by the workspace tests.
func wsTestPOIs(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pois := make([]geom.Point, n)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pois
}

// wsTestGroup returns a clustered group of m users with random headings.
func wsTestGroup(rng *rand.Rand, m int) ([]geom.Point, []Direction) {
	base := geom.Pt(0.15+0.7*rng.Float64(), 0.15+0.7*rng.Float64())
	users := make([]geom.Point, m)
	dirs := make([]Direction, m)
	for i := range users {
		users[i] = geom.Pt(base.X+0.03*rng.Float64(), base.Y+0.03*rng.Float64())
		dirs[i] = Direction{Angle: 2 * 3.14159 * rng.Float64()}
	}
	return users, dirs
}

// TestWorkspaceReuseDifferential asserts that TileMSRInto with a dirty,
// heavily reused workspace produces plans (meeting point, regions, stats)
// identical to computations on a fresh workspace, across both aggregates,
// directed/undirected orderings, and buffered/unbuffered configurations.
// The dirty workspace deliberately crosses configurations and group sizes
// between trials, so stale scratch from one run shape cannot leak into
// the next.
func TestWorkspaceReuseDifferential(t *testing.T) {
	pois := wsTestPOIs(3000, 7)
	configs := []struct {
		name string
		mod  func(*Options)
	}{
		{"max-undirected-unbuffered", func(o *Options) {}},
		{"max-directed-unbuffered", func(o *Options) { o.Directed = true }},
		{"max-directed-buffered", func(o *Options) { o.Directed = true; o.Buffer = 50 }},
		{"sum-undirected-unbuffered", func(o *Options) { o.Aggregate = gnn.Sum }},
		{"sum-undirected-buffered", func(o *Options) { o.Aggregate = gnn.Sum; o.Buffer = 50 }},
		{"sum-directed-buffered", func(o *Options) { o.Aggregate = gnn.Sum; o.Directed = true; o.Buffer = 50 }},
	}
	dirty := NewWorkspace()
	rng := rand.New(rand.NewSource(11))
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.TileLimit = 8
			cfg.mod(&opts)
			pl, err := NewPlanner(pois, opts)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 6; trial++ {
				users, dirs := wsTestGroup(rng, 2+trial%4)
				if !opts.Directed {
					dirs = nil
				}
				fresh, errF := pl.TileMSRInto(NewWorkspace(), users, dirs)
				reused, errR := pl.TileMSRInto(dirty, users, dirs)
				if (errF == nil) != (errR == nil) {
					t.Fatalf("trial %d: fresh err %v, reused err %v", trial, errF, errR)
				}
				if !reflect.DeepEqual(fresh, reused) {
					t.Errorf("trial %d (m=%d): reused workspace diverged\nfresh:  %+v\nreused: %+v",
						trial, len(users), fresh, reused)
				}
				// Dirty the workspace further with an unrelated circle
				// plan before the next trial.
				if _, err := pl.CircleMSRInto(dirty, users[:1]); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestCircleMSRIntoMatchesCircleMSR is the circle-method analog of the
// differential test.
func TestCircleMSRIntoMatchesCircleMSR(t *testing.T) {
	pois := wsTestPOIs(2000, 9)
	for _, agg := range []gnn.Aggregate{gnn.Max, gnn.Sum} {
		opts := DefaultOptions()
		opts.Aggregate = agg
		pl, err := NewPlanner(pois, opts)
		if err != nil {
			t.Fatal(err)
		}
		ws := NewWorkspace()
		rng := rand.New(rand.NewSource(13))
		for trial := 0; trial < 5; trial++ {
			users, _ := wsTestGroup(rng, 2+trial)
			fresh, errF := pl.CircleMSR(users)
			reused, errR := pl.CircleMSRInto(ws, users)
			if errF != nil || errR != nil {
				t.Fatalf("agg %v trial %d: errs %v / %v", agg, trial, errF, errR)
			}
			if !reflect.DeepEqual(fresh, reused) {
				t.Errorf("agg %v trial %d: circle plans diverged", agg, trial)
			}
		}
	}
}

// TestPlanDoesNotAliasWorkspace asserts that a returned plan survives
// arbitrary workspace reuse: the regions of an earlier plan must not
// change when the same workspace computes a different plan.
func TestPlanDoesNotAliasWorkspace(t *testing.T) {
	pois := wsTestPOIs(2000, 21)
	opts := DefaultOptions()
	opts.TileLimit = 8
	opts.Buffer = 50
	pl, err := NewPlanner(pois, opts)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	rng := rand.New(rand.NewSource(23))
	users, _ := wsTestGroup(rng, 3)
	first, err := pl.TileMSRInto(ws, users, nil)
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := pl.TileMSRInto(NewWorkspace(), users, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		others, _ := wsTestGroup(rng, 2+trial)
		if _, err := pl.TileMSRInto(ws, others, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(first, snapshot) {
		t.Error("plan mutated by later computations on the same workspace")
	}
}

// TestTileMSRIntoSteadyStateAllocs gates the core planner's steady-state
// allocation budget: after warm-up, one TileMSRInto on an owned workspace
// may allocate only the exported plan regions (one header slice plus one
// tile arena) and nothing else. This is the regression fence that keeps
// future changes from silently re-introducing per-plan churn.
func TestTileMSRIntoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	pois := wsTestPOIs(4000, 31)
	opts := DefaultOptions()
	opts.TileLimit = 10
	opts.Directed = true
	opts.Buffer = 50
	pl, err := NewPlanner(pois, opts)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	rng := rand.New(rand.NewSource(37))
	users, dirs := wsTestGroup(rng, 3)
	step := 0
	locs := make([]geom.Point, len(users))
	run := func() {
		step++
		jitter := 1e-5 * float64(step%5)
		for i, u := range users {
			locs[i] = geom.Pt(u.X+jitter, u.Y-jitter)
		}
		if _, err := pl.TileMSRInto(ws, locs, dirs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		run() // warm the workspace to its working size
	}
	allocs := testing.AllocsPerRun(100, run)
	const budget = 4
	if allocs > budget {
		t.Errorf("steady-state TileMSRInto allocates %.1f/op, budget %d", allocs, budget)
	}
}
