package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/nbrcache"
)

// TestDeletePOISemantics pins down the mutation API's edge behavior:
// range checks, double deletes, the never-empty guard, batch
// validation, and version accounting.
func TestDeletePOISemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := randomPoints(5, rng)
	pl := mustPlanner(t, pts, tileOpts(nil))

	if pl.DeletePOI(-1) || pl.DeletePOI(5) {
		t.Fatal("out-of-range delete reported success")
	}
	if !pl.DeletePOI(2) {
		t.Fatal("valid delete failed")
	}
	if pl.NumPOIs() != 4 {
		t.Fatalf("NumPOIs=%d after one delete of five", pl.NumPOIs())
	}
	if pl.DeletePOI(2) {
		t.Fatal("double delete reported success")
	}

	// Batch validation failures must apply nothing — not even the valid
	// prefix of the batch.
	snap := pl.Acquire()
	v, n := snap.Version(), snap.Tree().Len()
	snap.Release()
	if _, err := pl.ApplyPOIs(nil, []int{1, 1}); err == nil {
		t.Fatal("duplicate delete ids accepted")
	}
	if _, err := pl.ApplyPOIs([]geom.Point{geom.Pt(0.5, 0.5)}, []int{99}); err == nil {
		t.Fatal("batch with an unknown delete id accepted")
	}
	if _, err := pl.ApplyPOIs([]geom.Point{geom.Pt(0.5, 0.5)}, []int{2}); err == nil {
		t.Fatal("batch deleting an already-deleted id accepted")
	}
	if ids, err := pl.ApplyPOIs(nil, nil); ids != nil || err != nil {
		t.Fatalf("empty batch: ids=%v err=%v", ids, err)
	}
	snap = pl.Acquire()
	if snap.Version() != v || snap.Tree().Len() != n {
		t.Fatalf("rejected batches changed state: version %d->%d len %d->%d",
			v, snap.Version(), n, snap.Tree().Len())
	}
	snap.Release()

	// Drain to one live POI; the guard must hold it.
	for _, id := range []int{0, 1, 3} {
		if !pl.DeletePOI(id) {
			t.Fatalf("delete of %d failed", id)
		}
	}
	if pl.NumPOIs() != 1 {
		t.Fatalf("NumPOIs=%d, want 1", pl.NumPOIs())
	}
	if pl.DeletePOI(4) {
		t.Fatal("deleted the last live POI")
	}
	// A batch that nets out non-empty is fine even when it deletes the
	// last survivor.
	ids, err := pl.ApplyPOIs([]geom.Point{geom.Pt(0.25, 0.75)}, []int{4})
	if err != nil || len(ids) != 1 {
		t.Fatalf("replace batch: ids=%v err=%v", ids, err)
	}
	if pl.NumPOIs() != 1 || !tombstoned(pl, 4) {
		t.Fatalf("replace batch not applied: live=%d", pl.NumPOIs())
	}

	// Version advances by the number of applied operations.
	snap = pl.Acquire()
	defer snap.Release()
	if want := uint64(1 + 3 + 2); snap.Version() != want {
		t.Fatalf("version=%d, want %d", snap.Version(), want)
	}
	if snap.Version() != snap.Tree().Version() {
		t.Fatalf("snapshot/tree version skew: %d vs %d", snap.Version(), snap.Tree().Version())
	}
}

// tombstoned reports whether id is deleted in the currently published
// snapshot.
func tombstoned(pl *Planner, id int) bool {
	s := pl.Acquire()
	defer s.Release()
	return s.Deleted(id)
}

// TestSnapshotPinnedAcrossMutation: a reader holding a pinned snapshot
// must keep seeing the pre-mutation index while a concurrent publish
// installs the new one. (Only one publish happens while the pin is
// held: the writer waits for a retired snapshot's readers, so a pin may
// lag the published state by at most one generation.)
func TestSnapshotPinnedAcrossMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts := randomPoints(100, rng)
	pl := mustPlanner(t, pts, tileOpts(nil))

	old := pl.Acquire()
	p := geom.Pt(0.111, 0.222)
	id := pl.InsertPOI(p)
	fresh := pl.Acquire()

	if old.Version() != 0 || fresh.Version() != 1 {
		t.Fatalf("versions old=%d fresh=%d", old.Version(), fresh.Version())
	}
	if old.Tree().Len() != 100 || fresh.Tree().Len() != 101 {
		t.Fatalf("lens old=%d fresh=%d", old.Tree().Len(), fresh.Tree().Len())
	}
	if len(old.Points()) != 100 {
		t.Fatalf("pinned point table grew: %d", len(old.Points()))
	}
	if fresh.Points()[id] != p {
		t.Fatalf("fresh table missing the insert: %v", fresh.Points()[id])
	}
	old.Release()
	fresh.Release()

	// With the pin gone the writer can keep cycling buffers.
	if !pl.DeletePOI(id) {
		t.Fatal("delete of the fresh insert failed")
	}
	if pl.NumPOIs() != 100 {
		t.Fatalf("NumPOIs=%d", pl.NumPOIs())
	}
}

// churnStep applies one random mutation batch: a couple of inserts
// (near the action or far from it) and up to two deletes of live ids,
// keeping the live count comfortably above the top-k the planners need.
func churnStep(t *testing.T, pl *Planner, rng *rand.Rand, live *[]int) []geom.Point {
	t.Helper()
	var ins []geom.Point
	for n := rng.Intn(3); n > 0; n-- {
		if rng.Intn(2) == 0 {
			ins = append(ins, geom.Pt(0.4+0.2*rng.Float64(), 0.4+0.2*rng.Float64()))
		} else {
			ins = append(ins, geom.Pt(rng.Float64(), rng.Float64()))
		}
	}
	var del []int
	for n := rng.Intn(3); n > 0 && len(*live)-len(del) > 10; n-- {
		i := rng.Intn(len(*live))
		del = append(del, (*live)[i])
		(*live)[i] = (*live)[len(*live)-1]
		*live = (*live)[:len(*live)-1]
	}
	ids, err := pl.ApplyPOIs(ins, del)
	if err != nil {
		t.Fatalf("ApplyPOIs: %v", err)
	}
	*live = append(*live, ids...)
	return ins
}

// TestChurnDifferentialFence is the correctness fence of live POI
// churn: after any interleaving of inserts and deletes, every planner
// variant — {max, sum} × {tile, circle} × {cached, uncached} — must
// produce plans identical (up to the id renumbering of a rebuilt
// planner) to a freshly bulk-loaded planner over the surviving POI set.
// Deletions must leave no trace: not in the index, not in candidate
// collection, not through stale cache entries.
func TestChurnDifferentialFence(t *testing.T) {
	type cfg struct {
		name   string
		circle bool
		cached bool
		mod    func(*Options)
	}
	var cfgs []cfg
	for _, agg := range []struct {
		name string
		mod  func(*Options)
	}{
		{"max", nil},
		{"sum", func(o *Options) { o.Aggregate = gnn.Sum }},
	} {
		for _, shape := range []struct {
			name   string
			circle bool
		}{{"tile", false}, {"circle", true}} {
			for _, cached := range []bool{false, true} {
				name := agg.name + "/" + shape.name
				if cached {
					name += "/cached"
				}
				cfgs = append(cfgs, cfg{name: name, circle: shape.circle, cached: cached, mod: agg.mod})
			}
		}
	}

	for _, c := range cfgs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(63))
			pts := randomPoints(400, rng)
			opts := tileOpts(c.mod)
			opts.TileLimit = 6
			pl := mustPlanner(t, pts, opts)
			var cache *nbrcache.Cache
			if c.cached {
				cache = nbrcache.New(nbrcache.Config{})
				pl.ShareCache(cache)
			}

			live := make([]int, len(pts))
			for i := range live {
				live[i] = i
			}
			users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.485), geom.Pt(0.49, 0.51)}
			ws, wsRef := NewWorkspace(), NewWorkspace()

			for step := 0; step < 24; step++ {
				churnStep(t, pl, rng, &live)
				incStep(step, users, rng)

				var plan, ref Plan
				var err error
				if c.circle {
					if c.cached {
						plan, err = pl.CircleMSRCachedInto(ws, cache, users)
					} else {
						plan, err = pl.CircleMSRInto(ws, users)
					}
				} else {
					if c.cached {
						plan, err = pl.TileMSRCachedInto(ws, cache, users, nil)
					} else {
						plan, err = pl.TileMSRInto(ws, users, nil)
					}
				}
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}

				// Fresh planner over the surviving set, with the id remap.
				snap := pl.Acquire()
				surv := make([]geom.Point, 0, snap.Live())
				remap := make(map[int]int, snap.Live())
				for id, p := range snap.Points() {
					if !snap.Deleted(id) {
						remap[id] = len(surv)
						surv = append(surv, p)
					}
				}
				version := snap.Version()
				snap.Release()
				fresh := mustPlanner(t, surv, opts)
				if c.circle {
					ref, err = fresh.CircleMSRInto(wsRef, users)
				} else {
					ref, err = fresh.TileMSRInto(wsRef, users, nil)
				}
				if err != nil {
					t.Fatalf("step %d ref: %v", step, err)
				}

				if plan.Stats.IndexVersion != version {
					t.Fatalf("step %d: plan ran against version %d, published %d",
						step, plan.Stats.IndexVersion, version)
				}
				if plan.Best.Item.P != ref.Best.Item.P || plan.Best.Dist != ref.Best.Dist {
					t.Fatalf("step %d: meeting point diverged: churned %+v fresh %+v",
						step, plan.Best, ref.Best)
				}
				if remap[plan.Best.Item.ID] != ref.Best.Item.ID {
					t.Fatalf("step %d: optimum id %d remaps to %d, fresh chose %d",
						step, plan.Best.Item.ID, remap[plan.Best.Item.ID], ref.Best.Item.ID)
				}
				if !reflect.DeepEqual(plan.Regions, ref.Regions) {
					t.Fatalf("step %d: regions diverged from the fresh planner", step)
				}
			}
		})
	}
}

// TestMutationForcesFullReplan: any published mutation — even one that
// leaves the optimum untouched — must invalidate retained incremental
// state exactly once. The retained tiles were verified against a
// candidate set the mutation may have changed, so reusing them would be
// unsound; after the one forced full replan the stream returns to kept
// outcomes.
func TestMutationForcesFullReplan(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, tileOpts(nil))
	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.49)}
	ws := NewWorkspace()

	expect := func(label string, got, want IncOutcome, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got != want {
			t.Fatalf("%s: outcome %v, want %v", label, got, want)
		}
	}

	var st PlanState
	_, out, err := pl.TileMSRIncInto(ws, &st, users, nil)
	expect("tile seed", out, IncFull, err)
	_, out, err = pl.TileMSRIncInto(ws, &st, users, nil)
	expect("tile steady", out, IncKept, err)

	// A far-away insert: the optimum and every region stay, but the
	// retained plan's certificate is void.
	id := pl.InsertPOI(geom.Pt(0.97, 0.03))
	_, out, err = pl.TileMSRIncInto(ws, &st, users, nil)
	expect("tile post-insert", out, IncFull, err)
	_, out, err = pl.TileMSRIncInto(ws, &st, users, nil)
	expect("tile recovered", out, IncKept, err)

	if !pl.DeletePOI(id) {
		t.Fatal("delete failed")
	}
	_, out, err = pl.TileMSRIncInto(ws, &st, users, nil)
	expect("tile post-delete", out, IncFull, err)
	_, out, err = pl.TileMSRIncInto(ws, &st, users, nil)
	expect("tile recovered again", out, IncKept, err)

	var stc PlanState
	_, out, err = pl.CircleMSRIncInto(ws, &stc, users)
	expect("circle seed", out, IncFull, err)
	_, out, err = pl.CircleMSRIncInto(ws, &stc, users)
	expect("circle steady", out, IncKept, err)
	pl.InsertPOI(geom.Pt(0.03, 0.97))
	_, out, err = pl.CircleMSRIncInto(ws, &stc, users)
	expect("circle post-insert", out, IncFull, err)
	_, out, err = pl.CircleMSRIncInto(ws, &stc, users)
	expect("circle recovered", out, IncKept, err)
}

// TestChurnConcurrentPlanning is the race fence of the RCU index: one
// writer stream of batched mutations against concurrent planners of
// every flavor. Run under -race this exercises the snapshot handoff;
// the in-test assertions check what a reader can see — a coherent
// (tree, version) pair, plans against monotonically advancing versions,
// and regions that always cover their users.
func TestChurnConcurrentPlanning(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	pts := randomPoints(1500, rng)
	opts := tileOpts(nil)
	opts.TileLimit = 4
	pl := mustPlanner(t, pts, opts)
	cache := nbrcache.New(nbrcache.Config{})
	pl.ShareCache(cache)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			ws := NewWorkspace()
			var st PlanState
			var lastV uint64
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				users := []geom.Point{
					geom.Pt(0.45+0.1*rng.Float64(), 0.45+0.1*rng.Float64()),
					geom.Pt(0.45+0.1*rng.Float64(), 0.45+0.1*rng.Float64()),
				}
				var plan Plan
				var err error
				switch w {
				case 0:
					plan, err = pl.TileMSRInto(ws, users, nil)
				case 1:
					plan, err = pl.TileMSRCachedInto(ws, cache, users, nil)
				case 2:
					plan, err = pl.CircleMSRCachedInto(ws, cache, users)
				default:
					plan, _, err = pl.TileMSRIncCachedInto(ws, cache, &st, users, nil)
				}
				if err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				if plan.Stats.IndexVersion < lastV {
					t.Errorf("reader %d: version went backwards %d -> %d",
						w, lastV, plan.Stats.IndexVersion)
					return
				}
				lastV = plan.Stats.IndexVersion
				for j, u := range users {
					if !plan.Regions[j].Contains(u) {
						t.Errorf("reader %d: region %d misses its user", w, j)
						return
					}
				}
				if i%8 == 0 {
					snap := pl.Acquire()
					if snap.Version() != snap.Tree().Version() {
						t.Errorf("reader %d: snapshot/tree version skew %d vs %d",
							w, snap.Version(), snap.Tree().Version())
					}
					snap.Release()
				}
			}
		}(w)
	}

	live := make([]int, len(pts))
	for i := range live {
		live[i] = i
	}
	batches := 60
	if testing.Short() {
		batches = 15
	}
	for i := 0; i < batches; i++ {
		churnStep(t, pl, rng, &live)
	}
	close(stop)
	wg.Wait()

	snap := pl.Acquire()
	defer snap.Release()
	if snap.Live() != len(live) || snap.Tree().Len() != len(live) {
		t.Fatalf("final live=%d tree=%d, writer tracked %d",
			snap.Live(), snap.Tree().Len(), len(live))
	}
}
