package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/nbrcache"
	"mpn/internal/rtree"
)

// Errors returned by the planners.
var (
	ErrNoUsers = errors.New("core: no users in group")
	ErrNoPOIs  = errors.New("core: POI set is empty")
)

// Options configure the safe-region planners. The zero value is not
// usable; start from DefaultOptions.
type Options struct {
	// Aggregate selects MPN (Max) or Sum-MPN (Sum).
	Aggregate gnn.Aggregate

	// TileLimit is α of Algorithm 3: the maximum number of tile-growing
	// rounds per user. The paper's default is 30.
	TileLimit int

	// SplitLevel is L of Algorithm 2: how many times a rejected tile is
	// quartered and retried. The paper's default is 2.
	SplitLevel int

	// Directed enables the directed tile ordering of Fig. 8, which only
	// grows tiles whose subtended angle at the user deviates from her
	// recent heading by at most Theta.
	Directed bool

	// Theta is the angular deviation bound (radians) for the directed
	// ordering. Ignored unless Directed is set.
	Theta float64

	// Buffer is b of Section 5.4: the number of best GNNs retrieved once
	// per computation and used for all verifications (Theorems 4 and 7,
	// Algorithm 5). Zero disables buffering, in which case every
	// Divide-Verify call retrieves candidates from the R-tree.
	Buffer int

	// GroupVerify selects GT-Verify (Theorem 2) when true, and the naive
	// IT-Verify enumeration of all tile groups when false. IT-Verify is
	// exponential in the group size and exists for the ablation study.
	GroupVerify bool

	// IndexPruning enables the Theorem 3 / Theorem 6 candidate pruning
	// during R-tree retrieval. Disabling it scans the entire POI set on
	// every verification (ablation).
	IndexPruning bool

	// MaxLayers caps the tile-grid layer explored by the orderings, as a
	// safety bound on degenerate configurations. Zero means 4·TileLimit.
	MaxLayers int

	// IncCostRatio tunes the incremental planner's up-front cost
	// heuristic: when the retained clean regions hold more than
	// IncCostRatio times the tile frontier a fresh plan would build
	// (m·(TileLimit+1) tiles) — so that verifying every regrown tile
	// against the whole retained set would outweigh a full replan — the
	// oversized clean regions are first shrunk to the fresh-frontier
	// budget (keeping each member's nearest tiles) and the partial
	// regrow proceeds against the trimmed set. Zero selects
	// DefaultIncCostRatio (the measured crossover); a negative value
	// disables the heuristic and always regrows against the untrimmed
	// retained regions.
	IncCostRatio float64
}

// DefaultIncCostRatio is the measured crossover of the partial-regrow
// cost heuristic (see Options.IncCostRatio and the calibration note on
// regrowPredictedSlower): on the cmd/mpnbench escape workload the
// partial regrow wins while retained tiles stay below ~1.0× the fresh
// frontier and loses ~2× by 1.25×; 1.1 splits the measured regimes.
const DefaultIncCostRatio = 1.1

// DefaultOptions returns the paper's default configuration (Table 2):
// α=30, L=2, undirected ordering, GT-Verify, index pruning on, buffering
// off (enable by setting Buffer, the paper recommends 10–100 with 100 as
// the default when buffering is in play).
func DefaultOptions() Options {
	return Options{
		Aggregate:    gnn.Max,
		TileLimit:    30,
		SplitLevel:   2,
		Directed:     false,
		Theta:        math.Pi / 4,
		Buffer:       0,
		GroupVerify:  true,
		IndexPruning: true,
	}
}

// Validate reports a configuration error, if any.
func (o Options) Validate() error {
	if o.TileLimit < 0 {
		return fmt.Errorf("core: negative TileLimit %d", o.TileLimit)
	}
	if o.SplitLevel < 0 {
		return fmt.Errorf("core: negative SplitLevel %d", o.SplitLevel)
	}
	if o.Buffer < 0 {
		return fmt.Errorf("core: negative Buffer %d", o.Buffer)
	}
	if o.Directed && (o.Theta <= 0 || o.Theta > math.Pi) {
		return fmt.Errorf("core: Theta %v out of (0, π]", o.Theta)
	}
	return nil
}

// Stats counts the work performed by one safe-region computation. The
// experiment harness aggregates these across updates.
type Stats struct {
	// IndexVersion is the POI-index mutation version the computation ran
	// against: every traversal, candidate set, and region of the plan
	// came from the single immutable snapshot carrying this version.
	IndexVersion uint64
	// GNNCalls counts top-k GNN searches issued to the R-tree.
	GNNCalls int
	// IndexAccesses counts R-tree traversals for candidate retrieval
	// (the quantity the buffering optimization drives to zero after the
	// initial GNN).
	IndexAccesses int
	// CandidatesChecked counts candidate points fed to tile verification.
	CandidatesChecked int
	// TileVerifies counts Tile-Verify invocations (per candidate point).
	TileVerifies int
	// TilesAccepted counts tiles (including sub-tiles) added to regions.
	TilesAccepted int
	// TilesRejected counts tiles rejected at the deepest split level.
	TilesRejected int
}

// Add accumulates other into s. IndexVersion is not additive: the merged
// value is the newest version any accumulated computation saw.
func (s *Stats) Add(other Stats) {
	if other.IndexVersion > s.IndexVersion {
		s.IndexVersion = other.IndexVersion
	}
	s.GNNCalls += other.GNNCalls
	s.IndexAccesses += other.IndexAccesses
	s.CandidatesChecked += other.CandidatesChecked
	s.TileVerifies += other.TileVerifies
	s.TilesAccepted += other.TilesAccepted
	s.TilesRejected += other.TilesRejected
}

// Plan is the output of a safe-region computation: the optimal meeting
// point and one safe region per user (same order as the input users).
type Plan struct {
	Best    gnn.Result
	Regions []SafeRegion
	Stats   Stats
}

// Planner computes meeting points and safe regions against a mutable
// POI data set published as immutable snapshots. All mutable state of a
// computation lives in per-call structures and every computation pins
// one snapshot for its whole duration, so a Planner is safe for
// concurrent use by multiple goroutines (the public server shares one
// across groups) AND for planning concurrent with POI mutation (see
// ApplyPOIs): readers never block on a writer, and a writer never waits
// on more than one retired snapshot's readers.
type Planner struct {
	opts Options

	// netBackend answers KindNetRange requests (see RegisterNetBackend);
	// nil on Euclidean-only planners. Set once at server construction,
	// before concurrent planning begins.
	netBackend NetBackend

	// snap is the published snapshot all readers pin (see Acquire).
	snap atomic.Pointer[Snapshot]

	// Writer state, guarded by mu: the canonical slot-indexed point
	// table, tombstones, the running mutation count, the lagging shadow
	// buffer, and the caches to notify on publish. External POI ids are
	// assigned sequentially and never reused; they equal table slots
	// until the first id-space compaction, after which extSlot/ids
	// carry the indirection (see ApplyPOIs).
	mu      sync.Mutex
	points  []geom.Point
	deleted []bool // nil until the first delete (and after a compaction)
	ndel    int
	nextExt int     // next external id to assign
	extSlot []int32 // ext→slot, -1 = deleted; nil until first compaction
	ids     []int   // slot→ext; nil until first compaction
	version uint64
	shadow  *shadowState
	caches  []*nbrcache.Cache

	// onMutate, when set, observes every applied ApplyPOIs batch (see
	// OnMutate); called with mu held.
	onMutate func(baseExt int, inserts []geom.Point, deleteIDs []int)
}

// NewPlanner builds a planner over the POI set points. The R-tree index is
// bulk loaded once (STR). Returns an error for an empty POI set or invalid
// options.
func NewPlanner(points []geom.Point, opts Options) (*Planner, error) {
	if len(points) == 0 {
		return nil, ErrNoPOIs
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	items := make([]rtree.Item, len(points))
	for i, p := range points {
		items[i] = rtree.Item{P: p, ID: i}
	}
	own := make([]geom.Point, len(points))
	copy(own, points)
	pl := &Planner{opts: opts, points: own, nextExt: len(own)}
	pl.snap.Store(&Snapshot{
		tree:   rtree.Bulk(items, rtree.DefaultMaxEntries),
		points: own[:len(own):len(own)],
		live:   len(own),
	})
	return pl, nil
}

// Options returns the planner's configuration.
func (pl *Planner) Options() Options { return pl.opts }

// lookupTopK retrieves the top-k result set for users against the pinned
// snapshot: through the shared neighborhood cache when one is supplied,
// with a plain aggregate GNN traversal otherwise. The cached retrieval
// is byte-identical to the traversal (see internal/nbrcache); either way
// the results land in ws.topk.
func (pl *Planner) lookupTopK(ws *Workspace, cache *nbrcache.Cache, snap *Snapshot, users []geom.Point, k int) []gnn.Result {
	if cache != nil {
		return cache.TopKInto(snap.tree, &ws.gnn, &ws.nbr, users, pl.opts.Aggregate, k, ws.topk[:0])
	}
	return gnn.TopKInto(snap.tree, &ws.gnn, users, pl.opts.Aggregate, k, ws.topk[:0])
}

// Tree exposes the current snapshot's R-tree. It is safe to traverse —
// a published tree is never mutated in place — but unpinned: a caller
// that needs the tree, points, and version to cohere across several
// reads should Acquire a snapshot instead.
func (pl *Planner) Tree() *rtree.Tree { return pl.snap.Load().tree }

// Points returns the current snapshot's slot-indexed point table. Slots
// of deleted POIs retain their last location; use Acquire and
// Snapshot.Deleted to distinguish them when the planner has seen
// deletions. Slots coincide with external POI ids until the planner's
// first id-space compaction densifies the table (see ApplyPOIs).
func (pl *Planner) Points() []geom.Point { return pl.snap.Load().points }

// NumPOIs returns the number of live (non-deleted) POIs.
func (pl *Planner) NumPOIs() int { return pl.snap.Load().live }

// OnMutate registers a hook observing every applied ApplyPOIs batch:
// called after the batch publishes, while the writer lock is still held,
// so batches are reported exactly once and in application order —
// replaying them through ApplyPOIs on a fresh planner reproduces the
// same external id assignment. baseExt is the external id the batch's
// first insert received (equivalently, the external id-space size
// before the batch); inserts and deleteIDs are the caller's arguments,
// valid only for the duration of the call. The hook must be fast and
// must not call back into the planner. The durable store's POI capture
// is the intended consumer: it encodes and enqueues without blocking.
func (pl *Planner) OnMutate(fn func(baseExt int, inserts []geom.Point, deleteIDs []int)) {
	pl.mu.Lock()
	pl.onMutate = fn
	pl.mu.Unlock()
}

// maxLayers resolves the layer cap for tile orderings.
func (pl *Planner) maxLayers() int {
	if pl.opts.MaxLayers > 0 {
		return pl.opts.MaxLayers
	}
	if pl.opts.TileLimit == 0 {
		return 4
	}
	return 4 * pl.opts.TileLimit
}
