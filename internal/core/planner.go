package core

import (
	"errors"
	"fmt"
	"math"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/nbrcache"
	"mpn/internal/rtree"
)

// Errors returned by the planners.
var (
	ErrNoUsers = errors.New("core: no users in group")
	ErrNoPOIs  = errors.New("core: POI set is empty")
)

// Options configure the safe-region planners. The zero value is not
// usable; start from DefaultOptions.
type Options struct {
	// Aggregate selects MPN (Max) or Sum-MPN (Sum).
	Aggregate gnn.Aggregate

	// TileLimit is α of Algorithm 3: the maximum number of tile-growing
	// rounds per user. The paper's default is 30.
	TileLimit int

	// SplitLevel is L of Algorithm 2: how many times a rejected tile is
	// quartered and retried. The paper's default is 2.
	SplitLevel int

	// Directed enables the directed tile ordering of Fig. 8, which only
	// grows tiles whose subtended angle at the user deviates from her
	// recent heading by at most Theta.
	Directed bool

	// Theta is the angular deviation bound (radians) for the directed
	// ordering. Ignored unless Directed is set.
	Theta float64

	// Buffer is b of Section 5.4: the number of best GNNs retrieved once
	// per computation and used for all verifications (Theorems 4 and 7,
	// Algorithm 5). Zero disables buffering, in which case every
	// Divide-Verify call retrieves candidates from the R-tree.
	Buffer int

	// GroupVerify selects GT-Verify (Theorem 2) when true, and the naive
	// IT-Verify enumeration of all tile groups when false. IT-Verify is
	// exponential in the group size and exists for the ablation study.
	GroupVerify bool

	// IndexPruning enables the Theorem 3 / Theorem 6 candidate pruning
	// during R-tree retrieval. Disabling it scans the entire POI set on
	// every verification (ablation).
	IndexPruning bool

	// MaxLayers caps the tile-grid layer explored by the orderings, as a
	// safety bound on degenerate configurations. Zero means 4·TileLimit.
	MaxLayers int

	// IncCostRatio tunes the incremental planner's up-front cost
	// heuristic: a partial regrow is skipped in favor of a full replan
	// when the retained clean regions hold more than IncCostRatio times
	// the tile frontier a fresh plan would build (m·(TileLimit+1)
	// tiles), because every regrown tile is verified against the whole
	// retained set. Zero selects DefaultIncCostRatio (the measured
	// crossover); a negative value disables the heuristic and always
	// attempts the partial regrow.
	IncCostRatio float64
}

// DefaultIncCostRatio is the measured crossover of the partial-regrow
// cost heuristic (see Options.IncCostRatio and the calibration note on
// regrowPredictedSlower): on the cmd/mpnbench escape workload the
// partial regrow wins while retained tiles stay below ~1.0× the fresh
// frontier and loses ~2× by 1.25×; 1.1 splits the measured regimes.
const DefaultIncCostRatio = 1.1

// DefaultOptions returns the paper's default configuration (Table 2):
// α=30, L=2, undirected ordering, GT-Verify, index pruning on, buffering
// off (enable by setting Buffer, the paper recommends 10–100 with 100 as
// the default when buffering is in play).
func DefaultOptions() Options {
	return Options{
		Aggregate:    gnn.Max,
		TileLimit:    30,
		SplitLevel:   2,
		Directed:     false,
		Theta:        math.Pi / 4,
		Buffer:       0,
		GroupVerify:  true,
		IndexPruning: true,
	}
}

// Validate reports a configuration error, if any.
func (o Options) Validate() error {
	if o.TileLimit < 0 {
		return fmt.Errorf("core: negative TileLimit %d", o.TileLimit)
	}
	if o.SplitLevel < 0 {
		return fmt.Errorf("core: negative SplitLevel %d", o.SplitLevel)
	}
	if o.Buffer < 0 {
		return fmt.Errorf("core: negative Buffer %d", o.Buffer)
	}
	if o.Directed && (o.Theta <= 0 || o.Theta > math.Pi) {
		return fmt.Errorf("core: Theta %v out of (0, π]", o.Theta)
	}
	return nil
}

// Stats counts the work performed by one safe-region computation. The
// experiment harness aggregates these across updates.
type Stats struct {
	// GNNCalls counts top-k GNN searches issued to the R-tree.
	GNNCalls int
	// IndexAccesses counts R-tree traversals for candidate retrieval
	// (the quantity the buffering optimization drives to zero after the
	// initial GNN).
	IndexAccesses int
	// CandidatesChecked counts candidate points fed to tile verification.
	CandidatesChecked int
	// TileVerifies counts Tile-Verify invocations (per candidate point).
	TileVerifies int
	// TilesAccepted counts tiles (including sub-tiles) added to regions.
	TilesAccepted int
	// TilesRejected counts tiles rejected at the deepest split level.
	TilesRejected int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.GNNCalls += other.GNNCalls
	s.IndexAccesses += other.IndexAccesses
	s.CandidatesChecked += other.CandidatesChecked
	s.TileVerifies += other.TileVerifies
	s.TilesAccepted += other.TilesAccepted
	s.TilesRejected += other.TilesRejected
}

// Plan is the output of a safe-region computation: the optimal meeting
// point and one safe region per user (same order as the input users).
type Plan struct {
	Best    gnn.Result
	Regions []SafeRegion
	Stats   Stats
}

// Planner computes meeting points and safe regions against a fixed POI
// data set. All mutable state of a computation lives in per-call
// structures, so a Planner is safe for concurrent use by multiple
// goroutines (the public server shares one across groups).
type Planner struct {
	tree   *rtree.Tree
	points []geom.Point
	opts   Options
}

// NewPlanner builds a planner over the POI set points. The R-tree index is
// bulk loaded once (STR). Returns an error for an empty POI set or invalid
// options.
func NewPlanner(points []geom.Point, opts Options) (*Planner, error) {
	if len(points) == 0 {
		return nil, ErrNoPOIs
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	items := make([]rtree.Item, len(points))
	for i, p := range points {
		items[i] = rtree.Item{P: p, ID: i}
	}
	own := make([]geom.Point, len(points))
	copy(own, points)
	return &Planner{
		tree:   rtree.Bulk(items, rtree.DefaultMaxEntries),
		points: own,
		opts:   opts,
	}, nil
}

// Options returns the planner's configuration.
func (pl *Planner) Options() Options { return pl.opts }

// InsertPOI appends a point to the data set and the index, returning
// its id. The R-tree's mutation version is bumped, so shared
// neighborhood-cache entries computed against the old index
// self-invalidate on their next lookup. InsertPOI is NOT safe
// concurrently with planning calls: callers maintaining a live POI set
// must serialize mutations against planning (for example an RWMutex
// with planners on the read side).
func (pl *Planner) InsertPOI(p geom.Point) int {
	id := len(pl.points)
	pl.points = append(pl.points, p)
	pl.tree.Insert(rtree.Item{P: p, ID: id})
	return id
}

// lookupTopK retrieves the top-k result set for users: through the
// shared neighborhood cache when one is supplied, with a plain
// aggregate GNN traversal otherwise. The cached retrieval is
// byte-identical to the traversal (see internal/nbrcache); either way
// the results land in ws.topk.
func (pl *Planner) lookupTopK(ws *Workspace, cache *nbrcache.Cache, users []geom.Point, k int) []gnn.Result {
	if cache != nil {
		return cache.TopKInto(pl.tree, &ws.gnn, &ws.nbr, users, pl.opts.Aggregate, k, ws.topk[:0])
	}
	return gnn.TopKInto(pl.tree, &ws.gnn, users, pl.opts.Aggregate, k, ws.topk[:0])
}

// Tree exposes the underlying R-tree (read-only use).
func (pl *Planner) Tree() *rtree.Tree { return pl.tree }

// Points returns the POI data set backing the planner.
func (pl *Planner) Points() []geom.Point { return pl.points }

// NumPOIs returns the data set cardinality n.
func (pl *Planner) NumPOIs() int { return len(pl.points) }

// maxLayers resolves the layer cap for tile orderings.
func (pl *Planner) maxLayers() int {
	if pl.opts.MaxLayers > 0 {
		return pl.opts.MaxLayers
	}
	if pl.opts.TileLimit == 0 {
		return 4
	}
	return 4 * pl.opts.TileLimit
}
