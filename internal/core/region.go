// Package core implements the paper's contribution: independent safe
// regions for the Meeting Point Notification problem.
//
// Given a group of m moving users U and a POI set P indexed by an R-tree,
// the server reports the optimal meeting point p° (MAX-GNN, or SUM-GNN for
// the Sum-MPN variant) together with one safe region per user such that p°
// remains optimal for every combination of user locations inside their
// regions (Definition 3). The package provides:
//
//   - Verify            — the conservative group test of Lemma 1
//   - CircleMSR         — circular safe regions (Algorithm 1, Theorems 1 and 5)
//   - TileMSR           — tile-based safe regions (Algorithm 3) with
//     divide-and-conquer verification (Algorithm 2),
//     group tile verification (Algorithm 4, Theorem 2),
//     index pruning (Theorems 3 and 6), undirected and
//     directed tile orderings (Fig. 8), and the buffering
//     optimization (Algorithm 5, Theorems 4 and 7)
//   - Sum-MPN support   — the hyperbola-based Sum-GT-Verify (Algorithm 6)
//     with per-user memoization
package core

import (
	"fmt"
	"math"

	"mpn/internal/geom"
)

// RegionKind discriminates the safe-region representations: the two
// Euclidean shapes studied in the paper's main body, and the road-network
// range region of its Section 8 extension.
type RegionKind int

const (
	// KindCircle is a circular safe region (Section 4).
	KindCircle RegionKind = iota
	// KindTiles is a tile-based safe region: a union of axis-aligned
	// squares (Section 5).
	KindTiles
	// KindNetRange is a road-network range region: the set of road-segment
	// intervals within a network radius of the user (Section 8). The
	// payload is opaque to core — a NetworkRegion produced by the
	// registered network backend.
	KindNetRange
)

// String implements fmt.Stringer.
func (k RegionKind) String() string {
	switch k {
	case KindCircle:
		return "circle"
	case KindNetRange:
		return "netrange"
	default:
		return "tiles"
	}
}

// NetworkRegion is the opaque payload of a KindNetRange safe region,
// implemented by the road-network backend (internal/netmpn). core needs
// only the operations the engine and wire layers perform on any region:
// the escape test, a content-equality test for the epoch protocol, and
// the wire encoding. Implementations must be immutable once published in
// a Plan.
type NetworkRegion interface {
	// ContainsPoint reports whether the planar point p — snapped onto the
	// backend's road network — lies inside the region.
	ContainsPoint(p geom.Point) bool
	// EqualRegion reports content equality with another payload (same
	// center, radius, and covered intervals). Used by PlanState's epoch
	// bumping; pointer-identical payloads are equal without being asked.
	EqualRegion(other NetworkRegion) bool
	// AppendEncode appends the region's wire encoding (without any outer
	// kind tag) to buf and returns it.
	AppendEncode(buf []byte) []byte
	// WireSize returns the encoding's length in bytes.
	WireSize() int
}

// SafeRegion is one user's safe region. Exactly one of Circle/Tiles/Net
// is meaningful depending on Kind. Tile regions may mix tile sizes: the
// divide-and-conquer verification inserts quarter tiles down to the
// configured split level.
type SafeRegion struct {
	Kind   RegionKind
	Circle geom.Circle
	Tiles  []geom.Rect
	Net    NetworkRegion
}

// NetRegion constructs a road-network safe region over a backend payload.
func NetRegion(n NetworkRegion) SafeRegion {
	return SafeRegion{Kind: KindNetRange, Net: n}
}

// CircleRegion constructs a circular safe region.
func CircleRegion(c geom.Point, r float64) SafeRegion {
	return SafeRegion{Kind: KindCircle, Circle: geom.Circle{C: c, R: r}}
}

// TileRegion constructs a tile-based safe region from the given squares.
func TileRegion(tiles ...geom.Rect) SafeRegion {
	return SafeRegion{Kind: KindTiles, Tiles: tiles}
}

// Contains reports whether p lies inside the region. The simulator uses it
// to detect when a user escapes and must contact the server.
func (r SafeRegion) Contains(p geom.Point) bool {
	if r.Kind == KindCircle {
		return r.Circle.Contains(p)
	}
	if r.Kind == KindNetRange {
		return r.Net != nil && r.Net.ContainsPoint(p)
	}
	for _, t := range r.Tiles {
		if t.Contains(p) {
			return true
		}
	}
	return false
}

// MinDist returns ‖p,R‖min, the minimum distance from p to the region.
func (r SafeRegion) MinDist(p geom.Point) float64 {
	if r.Kind == KindCircle {
		return r.Circle.MinDist(p)
	}
	if r.Kind == KindNetRange {
		// Network regions carry no planar geometry; 0 is the conservative
		// lower bound for every caller of MinDist.
		return 0
	}
	d := math.Inf(1)
	for _, t := range r.Tiles {
		if v := t.MinDist(p); v < d {
			d = v
			if d == 0 {
				break
			}
		}
	}
	return d
}

// MaxDist returns ‖p,R‖max, the maximum distance from p to the region.
func (r SafeRegion) MaxDist(p geom.Point) float64 {
	if r.Kind == KindCircle {
		return r.Circle.MaxDist(p)
	}
	if r.Kind == KindNetRange {
		// Conservative upper bound; the network backend reasons about its
		// own regions in network distance and never consults this.
		return math.Inf(1)
	}
	d := 0.0
	for _, t := range r.Tiles {
		if v := t.MaxDist(p); v > d {
			d = v
		}
	}
	return d
}

// MaxExtent returns r↑, the maximum distance between the user location u
// and the region boundary (Theorem 3). For circles centered at u this is
// the radius.
func (r SafeRegion) MaxExtent(u geom.Point) float64 {
	return r.MaxDist(u)
}

// IsEmpty reports whether the region covers no area and no point. A tile
// region with zero tiles is empty; circles are never empty (a zero-radius
// circle still contains its center).
func (r SafeRegion) IsEmpty() bool {
	if r.Kind == KindNetRange {
		return r.Net == nil
	}
	return r.Kind == KindTiles && len(r.Tiles) == 0
}

// NumTiles returns the tile count (0 for circles). Exposed for the α-limit
// accounting and the experiment reports.
func (r SafeRegion) NumTiles() int {
	if r.Kind != KindTiles {
		return 0
	}
	return len(r.Tiles)
}

// BoundingRect returns the tight axis-aligned bounding box of the region.
func (r SafeRegion) BoundingRect() geom.Rect {
	if r.Kind == KindCircle {
		return r.Circle.BoundingRect()
	}
	if r.Kind == KindNetRange || len(r.Tiles) == 0 {
		return geom.Rect{}
	}
	b := r.Tiles[0]
	for _, t := range r.Tiles[1:] {
		b = b.Union(t)
	}
	return b
}

// String implements fmt.Stringer.
func (r SafeRegion) String() string {
	switch r.Kind {
	case KindCircle:
		return r.Circle.String()
	case KindNetRange:
		return "netrange"
	default:
		return fmt.Sprintf("tiles(%d)", len(r.Tiles))
	}
}
