package core

import (
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/nbrcache"
)

// CircleMSR implements Algorithm 1 (Circle-MSR): it retrieves the best two
// meeting points with a top-2 GNN query and assigns every user a circle of
// the maximal common radius
//
//	MAX:  rmax = (‖p²,U‖max − ‖p°,U‖max) / 2        (Theorem 1, Eq. 6)
//	SUM:  rmax = (‖p²,U‖sum − ‖p°,U‖sum) / (2m)     (Theorem 5, Eq. 11)
//
// where p² is the runner-up. When the data set holds a single POI, the
// result can never change and the radius is unbounded; we return circles
// covering the whole plane via an effectively infinite radius derived from
// the data diameter.
// CircleMSR borrows a pooled Workspace; loops that recompute continuously
// should own one and call Plan directly.
//
// Deprecated: use Plan with a KindCircle PlanRequest.
func (pl *Planner) CircleMSR(users []geom.Point) (Plan, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	p, _, err := pl.Plan(ws, PlanRequest{Kind: KindCircle, Users: users})
	return p, err
}

// CircleMSRInto is CircleMSR with all scratch state drawn from ws: the
// top-2 GNN runs on the workspace's typed heap and result buffer, so the
// only allocation in steady state is the returned region slice (which
// does not alias ws and survives its reuse).
//
// Deprecated: use Plan with a KindCircle PlanRequest.
func (pl *Planner) CircleMSRInto(ws *Workspace, users []geom.Point) (Plan, error) {
	p, _, err := pl.Plan(ws, PlanRequest{Kind: KindCircle, Users: users})
	return p, err
}

// CircleMSRCachedInto is CircleMSRInto with the top-2 result set
// retrieved through the shared neighborhood cache; the returned plan is
// byte-identical to CircleMSRInto's. A nil cache degrades to
// CircleMSRInto.
//
// Deprecated: use Plan with a KindCircle PlanRequest carrying the cache.
func (pl *Planner) CircleMSRCachedInto(ws *Workspace, cache *nbrcache.Cache, users []geom.Point) (Plan, error) {
	p, _, err := pl.Plan(ws, PlanRequest{Kind: KindCircle, Users: users, Cache: cache})
	return p, err
}

func (pl *Planner) circleMSR(ws *Workspace, cache *nbrcache.Cache, users []geom.Point) (Plan, error) {
	if len(users) == 0 {
		return Plan{}, ErrNoUsers
	}
	snap := pl.Acquire()
	defer snap.Release()
	return pl.circleMSRSnap(ws, cache, snap, users)
}

// circleMSRSnap runs circle planning entirely against one pinned
// snapshot; callers that already hold a snapshot (the incremental
// planner's full fallback) reuse it so the whole update sees a single
// index state.
func (pl *Planner) circleMSRSnap(ws *Workspace, cache *nbrcache.Cache, snap *Snapshot, users []geom.Point) (Plan, error) {
	var plan Plan
	plan.Stats.IndexVersion = snap.version
	ws.topk = pl.lookupTopK(ws, cache, snap, users, 2)
	plan.Stats.GNNCalls++
	plan.Best = ws.topk[0]

	r := pl.circleRadius(users, ws.topk)
	plan.Regions = make([]SafeRegion, len(users))
	for i, u := range users {
		plan.Regions[i] = CircleRegion(u, r)
	}
	return plan, nil
}

// circleRadius computes the maximal safe radius from a top-2 GNN result.
func (pl *Planner) circleRadius(users []geom.Point, top []gnn.Result) float64 {
	if len(top) < 2 {
		// Single POI: no competitor can ever take over. Any radius is
		// safe; pick one that dwarfs the workload extent.
		return 1e18
	}
	gap := top[1].Dist - top[0].Dist
	if gap < 0 {
		gap = 0
	}
	if pl.opts.Aggregate == gnn.Max {
		return gap / 2
	}
	return gap / (2 * float64(len(users)))
}
