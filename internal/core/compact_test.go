package core

import (
	"math/rand"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/nbrcache"
)

// TestCompactionBoundedMemory is the regression fence of long-session
// id-space compaction: across 10k churn operations on a planner whose
// live set stays near a few hundred points, the published point table
// must stay bounded by twice the live set instead of growing with every
// id ever inserted, external ids must keep their never-reused
// semantics, and every plan must match a freshly bulk-loaded planner
// over the surviving set.
func TestCompactionBoundedMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	pts := randomPoints(300, rng)
	opts := tileOpts(nil)
	opts.TileLimit = 6
	pl := mustPlanner(t, pts, opts)
	cache := nbrcache.New(nbrcache.Config{})
	pl.ShareCache(cache)

	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.485)}
	ws, wsRef := NewWorkspace(), NewWorkspace()
	var st PlanState

	live := make([]int, len(pts))
	for i := range live {
		live[i] = i
	}
	totalOps, totalIns := 0, len(pts)
	sawCompaction := false
	var lastVersion uint64

	for step := 0; totalOps < 10000; step++ {
		// One insert and one delete per batch: the live count hovers at
		// 300 while tombstones accrue until compaction fires.
		ins := []geom.Point{geom.Pt(rng.Float64(), rng.Float64())}
		i := rng.Intn(len(live))
		del := []int{live[i]}
		live[i] = live[len(live)-1]
		live = live[:len(live)-1]

		ids, err := pl.ApplyPOIs(ins, del)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if ids[0] != totalIns {
			t.Fatalf("step %d: external id %d, want %d (sequential, never reused)", step, ids[0], totalIns)
		}
		totalIns++
		totalOps += 2
		live = append(live, ids[0])

		// Deleting the already-deleted external id must stay an error
		// forever, across any number of compactions.
		if _, err := pl.ApplyPOIs(nil, del); err == nil {
			t.Fatalf("step %d: re-delete of external id %d accepted", step, del[0])
		}

		snap := pl.Acquire()
		if len(snap.Points()) > 2*snap.Live() {
			snap.Release()
			t.Fatalf("step %d: point table %d for %d live POIs — compaction never fired",
				step, len(pl.Points()), pl.NumPOIs())
		}
		if snap.Version() <= lastVersion {
			snap.Release()
			t.Fatalf("step %d: version did not advance (%d)", step, snap.Version())
		}
		lastVersion = snap.Version()
		if len(snap.Points()) == snap.Live() && snap.Live() == len(live) && step > 0 {
			sawCompaction = true
		}
		snap.Release()

		// Every 250 batches, fence plans (cached and incremental paths
		// included — both must survive the slot remap via the version
		// gate) against a fresh planner over the surviving set.
		if step%250 != 0 {
			continue
		}
		plan, _, err := pl.TileMSRIncCachedInto(ws, cache, &st, users, nil)
		if err != nil {
			t.Fatalf("step %d plan: %v", step, err)
		}
		snap = pl.Acquire()
		surv := make([]geom.Point, 0, snap.Live())
		for slot, p := range snap.Points() {
			if !snap.Deleted(slot) {
				surv = append(surv, p)
			}
		}
		snap.Release()
		fresh := mustPlanner(t, surv, opts)
		ref, err := fresh.TileMSRInto(wsRef, users, nil)
		if err != nil {
			t.Fatalf("step %d ref: %v", step, err)
		}
		if plan.Best.Item.P != ref.Best.Item.P || plan.Best.Dist != ref.Best.Dist {
			t.Fatalf("step %d: optimum diverged: churned %+v fresh %+v", step, plan.Best, ref.Best)
		}
	}

	if !sawCompaction {
		t.Fatal("10k ops never produced a dense (fully compacted) table")
	}
	if pl.NumPOIs() != len(live) {
		t.Fatalf("live count skew: planner %d, test %d", pl.NumPOIs(), len(live))
	}
}

// TestCompactionSharedTombstones: publishes share the canonical
// tombstone table instead of copying it per batch, and tombstone bits
// are only ever set in a fresh clone — so a reader holding the
// pre-publish snapshot keeps a stable view across the next publish
// (one generation, the documented pin lifetime), whether that publish
// inserts or deletes.
func TestCompactionSharedTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	pts := randomPoints(64, rng) // below compactMinTable: no compaction
	pl := mustPlanner(t, pts, tileOpts(nil))

	if !pl.DeletePOI(3) {
		t.Fatal("delete failed")
	}

	// Pin across an insert-only publish: the shared tombstone table must
	// not change under the pinned reader even though the canonical table
	// appended a slot.
	pinned := pl.Acquire()
	if _, err := pl.ApplyPOIs([]geom.Point{geom.Pt(rng.Float64(), rng.Float64())}, nil); err != nil {
		t.Fatal(err)
	}
	if !pinned.Deleted(3) || pinned.Deleted(4) || len(pinned.Points()) != 64 {
		t.Fatalf("pinned snapshot mutated by insert: del3=%v del4=%v len=%d",
			pinned.Deleted(3), pinned.Deleted(4), len(pinned.Points()))
	}
	pinned.Release()

	// Pin across a delete publish: the new tombstone lands in a fresh
	// clone, never in the table the pinned reader shares.
	pinned = pl.Acquire()
	if !pl.DeletePOI(5) {
		t.Fatal("second delete failed")
	}
	if !pinned.Deleted(3) || pinned.Deleted(5) || len(pinned.Points()) != 65 {
		t.Fatalf("pinned snapshot mutated by delete: del3=%v del5=%v len=%d",
			pinned.Deleted(3), pinned.Deleted(5), len(pinned.Points()))
	}
	pinned.Release()

	cur := pl.Acquire()
	defer cur.Release()
	if !cur.Deleted(3) || !cur.Deleted(5) || len(cur.Points()) != 65 {
		t.Fatalf("current snapshot wrong: del3=%v del5=%v len=%d",
			cur.Deleted(3), cur.Deleted(5), len(cur.Points()))
	}
}

// TestOnMutateCapture: the OnMutate hook must see every applied batch
// exactly once, in order, with the original external ids — and must not
// fire for rejected batches. Replaying the captured stream through a
// fresh planner must reproduce the external id assignment.
func TestOnMutateCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	pts := randomPoints(50, rng)
	pl := mustPlanner(t, pts, tileOpts(nil))

	type batch struct {
		base int
		ins  []geom.Point
		del  []int
	}
	var captured []batch
	pl.OnMutate(func(baseExt int, inserts []geom.Point, deleteIDs []int) {
		captured = append(captured, batch{
			base: baseExt,
			ins:  append([]geom.Point(nil), inserts...),
			del:  append([]int(nil), deleteIDs...),
		})
	})

	if _, err := pl.ApplyPOIs(nil, []int{999}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if len(captured) != 0 {
		t.Fatal("rejected batch captured")
	}

	ids1, err := pl.ApplyPOIs([]geom.Point{geom.Pt(0.1, 0.9), geom.Pt(0.9, 0.1)}, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.ApplyPOIs(nil, []int{ids1[0]}); err != nil {
		t.Fatal(err)
	}

	if len(captured) != 2 {
		t.Fatalf("captured %d batches, want 2", len(captured))
	}
	if captured[0].base != 50 || captured[1].base != 52 {
		t.Fatalf("bases: %d, %d", captured[0].base, captured[1].base)
	}
	if captured[1].del[0] != ids1[0] {
		t.Fatalf("captured delete id %d, want %d", captured[1].del[0], ids1[0])
	}

	// Replay onto a fresh planner: same external ids, same live set.
	fresh := mustPlanner(t, pts, tileOpts(nil))
	next := 50
	for _, b := range captured {
		ids, err := fresh.ApplyPOIs(b.ins, b.del)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		for i, id := range ids {
			if id != next+i {
				t.Fatalf("replay id %d, want %d", id, next+i)
			}
		}
		next += len(ids)
	}
	if fresh.NumPOIs() != pl.NumPOIs() {
		t.Fatalf("replayed live %d, original %d", fresh.NumPOIs(), pl.NumPOIs())
	}
}
