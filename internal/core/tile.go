package core

import (
	"math"
	"sort"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/rtree"
)

// Direction is one user's recent travel direction for the directed tile
// ordering: the heading angle (radians) and the learned angular deviation
// bound θ [26]. A non-positive Theta falls back to Options.Theta.
type Direction struct {
	Angle float64
	Theta float64
}

// TileMSR implements Algorithm 3 (Tile-MSR): it grows one tile-based safe
// region per user by browsing candidate tiles around each user in
// round-robin order, verifying each tile against all non-result POIs with
// the divide-and-conquer procedure of Algorithm 2, and inserting the tiles
// that pass.
//
// dirs supplies each user's recent travel direction for the directed
// ordering; it may be nil when Options.Directed is false.
func (pl *Planner) TileMSR(users []geom.Point, dirs []Direction) (Plan, error) {
	if len(users) == 0 {
		return Plan{}, ErrNoUsers
	}
	if pl.opts.Directed && len(dirs) != len(users) {
		dirs = make([]Direction, len(users))
	}

	var plan Plan
	k := 2
	if pl.opts.Buffer > 0 {
		k = pl.opts.Buffer + 1
		if k < 2 {
			k = 2
		}
	}
	top := gnn.TopK(pl.tree, users, pl.opts.Aggregate, k)
	plan.Stats.GNNCalls++
	plan.Best = top[0]
	rmax := pl.circleRadius(users, top)

	t := &tilePlanning{
		pl:    pl,
		users: users,
		po:    top[0].Item.P,
		poID:  top[0].Item.ID,
		poAgg: top[0].Dist,
		stats: &plan.Stats,
	}

	// Degenerate case: a tie for the optimum leaves no safe radius. Each
	// user gets a point region; the next movement triggers an update.
	if rmax <= 0 {
		plan.Regions = make([]SafeRegion, len(users))
		for i, u := range users {
			plan.Regions[i] = TileRegion(geom.Rect{Min: u, Max: u})
		}
		return plan, nil
	}

	if pl.opts.Buffer > 0 {
		t.initBuffer(pl.opts.Buffer, top)
	}

	delta := math.Sqrt2 * rmax
	t.regions = make([]SafeRegion, len(users))
	if pl.opts.Aggregate == gnn.Sum {
		t.sumMemo = make([]map[int]float64, len(users))
	}
	orderings := make([]*tileOrdering, len(users))
	for i, u := range users {
		t.regions[i] = TileRegion()
		t.addTile(i, geom.RectAround(u, delta)) // seed: inscribed square of the rmax circle
		var heading, theta float64 = 0, pl.opts.Theta
		if dirs != nil {
			heading = dirs[i].Angle
			if dirs[i].Theta > 0 {
				theta = dirs[i].Theta
			}
		}
		orderings[i] = newTileOrdering(u, delta, pl.maxLayers(), pl.opts.Directed, heading, theta)
	}

	// Round-robin growth, α rounds (lines 5–11 of Algorithm 3).
	live := len(users)
	exhausted := make([]bool, len(users))
	for round := 0; round < pl.opts.TileLimit && live > 0; round++ {
		for i := range users {
			if exhausted[i] {
				continue
			}
			for {
				s, ok := orderings[i].next()
				if !ok {
					exhausted[i] = true
					live--
					break
				}
				if t.divideVerify(i, s, pl.opts.SplitLevel) {
					orderings[i].markAccepted()
					break
				}
			}
		}
	}

	plan.Regions = t.regions
	return plan, nil
}

// tilePlanning is the per-computation state of one Tile-MSR run.
type tilePlanning struct {
	pl    *Planner
	users []geom.Point
	po    geom.Point
	poID  int
	poAgg float64 // ‖p°,U‖ under the aggregate
	stats *Stats

	regions []SafeRegion

	// Buffering state (Section 5.4): the best b+1 GNNs and the distance
	// thresholds τ_1 ≤ … ≤ τ_b of Algorithm 5 (τ_z is thresholds[z-1]).
	buffered   []gnn.Result
	thresholds []float64

	// Sum-MPN memoization (Section 6.3.1): per user, candidate POI id →
	// min over the user's current region tiles of ‖p′,l‖ − ‖p°,l‖.
	sumMemo []map[int]float64

	// Scratch buffer for candidate retrieval.
	candBuf []candidate
}

type candidate struct {
	id int
	p  geom.Point
}

// initBuffer stores the best b+1 meeting points (retrieved in the single
// index traversal of TileMSR) and precomputes the Algorithm 5 thresholds
//
//	τ_z = (‖p^{z+1},U‖ − ‖p°,U‖) / 2     (MAX, Definition 6)
//	τ_z = (‖p^{z+1},U‖ − ‖p°,U‖) / 2m   (SUM, Theorem 7)
//
// When the data set holds fewer than z+1 points, no POI outside the buffer
// exists and τ_z is unbounded.
func (t *tilePlanning) initBuffer(b int, top []gnn.Result) {
	t.buffered = top
	t.stats.IndexAccesses++

	denom := 2.0
	if t.pl.opts.Aggregate == gnn.Sum {
		denom = 2 * float64(len(t.users))
	}
	t.thresholds = make([]float64, 0, b)
	for z := 1; z <= b; z++ {
		if z < len(t.buffered) {
			t.thresholds = append(t.thresholds, (t.buffered[z].Dist-t.poAgg)/denom)
		} else {
			t.thresholds = append(t.thresholds, math.Inf(1))
		}
	}
}

// addTile inserts tile s into user i's region and maintains the Sum-MPN
// memo tables (the Hx(p′) ← min{Fx, Hx(p′)} update of Algorithm 6).
func (t *tilePlanning) addTile(i int, s geom.Rect) {
	t.regions[i].Tiles = append(t.regions[i].Tiles, s)
	t.stats.TilesAccepted++
	if t.sumMemo != nil {
		for id, f := range t.sumMemo[i] {
			v := geom.FocalDiffMin(s, t.pl.points[id], t.po)
			if v < f {
				t.sumMemo[i][id] = v
			}
		}
	}
}

// divideVerify is Algorithm 2 (or Algorithm 5 when buffering is enabled):
// verify tile s for user i against every candidate POI; on failure quarter
// the tile and recurse down to split level 0.
func (t *tilePlanning) divideVerify(i int, s geom.Rect, level int) bool {
	if t.buffered != nil {
		return t.bufferDivideVerify(i, s, level)
	}
	cands := t.collectCandidates(i, s)
	if t.verifyAgainst(i, s, cands) {
		t.addTile(i, s)
		return true
	}
	return t.splitAndRecurse(i, s, level)
}

// bufferDivideVerify is Algorithm 5 (Buffer-Divide-Verify).
func (t *tilePlanning) bufferDivideVerify(i int, s geom.Rect, level int) bool {
	// dist ← max{‖ui,s‖max, max_j ‖uj,Rj‖max} (line 1).
	dist := s.MaxDist(t.users[i])
	for j := range t.users {
		if v := t.regions[j].MaxExtent(t.users[j]); v > dist {
			dist = v
		}
	}
	// Smallest slot z (1-based) with dist ≤ τ_z, by binary search (line 2).
	idx := sort.SearchFloat64s(t.thresholds, dist)
	if idx == len(t.thresholds) {
		// No slot: the tile violates the Theorem 4/7 condition (lines 3–4).
		t.stats.TilesRejected++
		return false
	}
	// Verify against P*₁..z − {p°} = buffered[1..idx] (line 5). idx==0
	// means even the circle-radius threshold covers dist, so no
	// competitor is reachable and the tile is trivially safe.
	t.candBuf = t.candBuf[:0]
	for c := 1; c <= idx && c < len(t.buffered); c++ {
		t.candBuf = append(t.candBuf, candidate{id: t.buffered[c].Item.ID, p: t.buffered[c].Item.P})
	}
	t.stats.CandidatesChecked += len(t.candBuf)
	if t.verifyAgainst(i, s, t.candBuf) {
		t.addTile(i, s)
		return true
	}
	return t.splitAndRecurse(i, s, level)
}

// splitAndRecurse implements lines 4–10 of Algorithm 2.
func (t *tilePlanning) splitAndRecurse(i int, s geom.Rect, level int) bool {
	if level <= 0 {
		t.stats.TilesRejected++
		return false
	}
	ok := false
	for _, sub := range s.Quadrants() {
		if t.divideVerify(i, sub, level-1) {
			ok = true
		}
	}
	if !ok {
		t.stats.TilesRejected++
	}
	return ok
}

// verifyAgainst runs Tile-Verify for every candidate and reports whether
// the tile is safe with respect to all of them.
func (t *tilePlanning) verifyAgainst(i int, s geom.Rect, cands []candidate) bool {
	if len(cands) == 0 {
		return true
	}
	if t.pl.opts.Aggregate == gnn.Sum {
		for _, c := range cands {
			t.stats.TileVerifies++
			if !t.sumTileVerify(i, s, c) {
				return false
			}
		}
		return true
	}
	ts := tileSets{users: make([][]geom.Rect, len(t.users))}
	for j := range t.users {
		if j == i {
			ts.users[j] = []geom.Rect{s}
		} else {
			ts.users[j] = t.regions[j].Tiles
		}
	}
	for _, c := range cands {
		t.stats.TileVerifies++
		var ok bool
		if t.pl.opts.GroupVerify {
			ok = gtVerifyMax(ts, t.po, c.p)
		} else {
			ok = itVerifyMax(ts, t.po, c.p)
		}
		if !ok {
			return false
		}
	}
	return true
}

// sumTileVerify is Algorithm 6 (Sum-GT-Verify) with the hash-table
// memoization described in Section 6.3.1: the tile is safe w.r.t.
// candidate c iff F = F_x(s) + Σ_{j≠x} F_j ≥ 0, where F_j is the memoized
// minimum of ‖p′,l‖ − ‖p°,l‖ over user j's current region and F_x(s) the
// minimum over the new tile alone.
func (t *tilePlanning) sumTileVerify(i int, s geom.Rect, c candidate) bool {
	total := geom.FocalDiffMin(s, c.p, t.po)
	for j := range t.users {
		if j != i {
			total += t.sumRegionF(j, c)
		}
	}
	return total >= 0
}

// sumRegionF returns the memoized F_j value for candidate c.
func (t *tilePlanning) sumRegionF(j int, c candidate) float64 {
	memo := t.sumMemo[j]
	if memo == nil {
		memo = make(map[int]float64)
		t.sumMemo[j] = memo
	}
	if f, ok := memo[c.id]; ok {
		return f
	}
	f := math.Inf(1)
	for _, tile := range t.regions[j].Tiles {
		if v := geom.FocalDiffMin(tile, c.p, t.po); v < f {
			f = v
		}
	}
	memo[c.id] = f
	return f
}

// collectCandidates retrieves the POIs that could displace p° given the
// hypothetical region group with s added to user i, traversing the R-tree
// with the Theorem 3 (MAX) or Theorem 6 (SUM) pruning rule. With pruning
// disabled it returns every non-result POI.
func (t *tilePlanning) collectCandidates(i int, s geom.Rect) []candidate {
	t.stats.IndexAccesses++
	t.candBuf = t.candBuf[:0]

	if !t.pl.opts.IndexPruning {
		for id, p := range t.pl.points {
			if id != t.poID {
				t.candBuf = append(t.candBuf, candidate{id: id, p: p})
			}
		}
		t.stats.CandidatesChecked += len(t.candBuf)
		return t.candBuf
	}

	// Extents r↑_j of the hypothetical regions.
	ext := make([]float64, len(t.users))
	for j, u := range t.users {
		ext[j] = t.regions[j].MaxExtent(u)
		if j == i {
			if v := s.MaxDist(u); v > ext[j] {
				ext[j] = v
			}
		}
	}

	if t.pl.opts.Aggregate == gnn.Max {
		// ‖p°,R‖⊤ over the hypothetical group.
		dmax := s.MaxDist(t.po)
		for j := range t.users {
			if j == i {
				continue
			}
			if v := t.regions[j].MaxDist(t.po); v > dmax {
				dmax = v
			}
		}
		bounds := make([]float64, len(t.users))
		for j := range bounds {
			bounds[j] = dmax + ext[j]
		}
		t.pl.tree.PrunedSearch(
			func(r geom.Rect) bool {
				for j, u := range t.users {
					if r.MinDist(u) > bounds[j] {
						return false
					}
				}
				return true
			},
			func(it rtree.Item) bool {
				if it.ID != t.poID {
					t.candBuf = append(t.candBuf, candidate{id: it.ID, p: it.P})
				}
				return true
			},
		)
	} else {
		// Theorem 6: prune p when Σ‖p,uj‖ > ‖p°,U‖sum + 2Σ r↑_j.
		bound := t.poAgg
		for _, e := range ext {
			bound += 2 * e
		}
		t.pl.tree.PrunedSearch(
			func(r geom.Rect) bool {
				sum := 0.0
				for _, u := range t.users {
					sum += r.MinDist(u)
				}
				return sum <= bound
			},
			func(it rtree.Item) bool {
				if it.ID != t.poID {
					t.candBuf = append(t.candBuf, candidate{id: it.ID, p: it.P})
				}
				return true
			},
		)
	}
	t.stats.CandidatesChecked += len(t.candBuf)
	return t.candBuf
}
