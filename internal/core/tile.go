package core

import (
	"math"
	"sort"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/nbrcache"
	"mpn/internal/rtree"
)

// Direction is one user's recent travel direction for the directed tile
// ordering: the heading angle (radians) and the learned angular deviation
// bound θ [26]. A non-positive Theta falls back to Options.Theta.
type Direction struct {
	Angle float64
	Theta float64
}

// TileMSR implements Algorithm 3 (Tile-MSR): it grows one tile-based safe
// region per user by browsing candidate tiles around each user in
// round-robin order, verifying each tile against all non-result POIs with
// the divide-and-conquer procedure of Algorithm 2, and inserting the tiles
// that pass.
//
// dirs supplies each user's recent travel direction for the directed
// ordering; it may be nil when Options.Directed is false.
//
// TileMSR borrows a pooled Workspace; loops that recompute continuously
// should own one and call Plan directly.
//
// Deprecated: use Plan with a KindTiles PlanRequest.
func (pl *Planner) TileMSR(users []geom.Point, dirs []Direction) (Plan, error) {
	ws := GetWorkspace()
	defer PutWorkspace(ws)
	p, _, err := pl.Plan(ws, PlanRequest{Kind: KindTiles, Users: users, Dirs: dirs})
	return p, err
}

// TileMSRInto is TileMSR with all scratch state drawn from ws. The
// returned plan is exported by copy (two allocations) and remains valid
// after ws is reused or returned to the pool.
//
// Deprecated: use Plan with a KindTiles PlanRequest.
func (pl *Planner) TileMSRInto(ws *Workspace, users []geom.Point, dirs []Direction) (Plan, error) {
	p, _, err := pl.Plan(ws, PlanRequest{Kind: KindTiles, Users: users, Dirs: dirs})
	return p, err
}

// TileMSRCachedInto is TileMSRInto with the top-k result set retrieved
// through the shared neighborhood cache: when another co-located group
// (or a previous update of this one) already paid the index traversal
// for the same centroid tile, this computation reuses its certified
// candidate set instead of touching the R-tree. The returned plan is
// byte-identical to TileMSRInto's on every path — cached retrieval is
// exact (see internal/nbrcache) and every accepted tile is still
// Divide-Verified against this group's actual members. A nil cache
// degrades to TileMSRInto.
//
// Deprecated: use Plan with a KindTiles PlanRequest carrying the cache.
func (pl *Planner) TileMSRCachedInto(ws *Workspace, cache *nbrcache.Cache, users []geom.Point, dirs []Direction) (Plan, error) {
	p, _, err := pl.Plan(ws, PlanRequest{Kind: KindTiles, Users: users, Dirs: dirs, Cache: cache})
	return p, err
}

func (pl *Planner) tileMSR(ws *Workspace, cache *nbrcache.Cache, users []geom.Point, dirs []Direction) (Plan, error) {
	if len(users) == 0 {
		return Plan{}, ErrNoUsers
	}
	snap := pl.Acquire()
	defer snap.Release()
	return pl.tileMSRSnap(ws, cache, snap, users, dirs)
}

// tileMSRSnap is tileMSR against an already-pinned snapshot: the whole
// computation — GNN retrieval, candidate collection, verification —
// traverses exactly that snapshot's index, so a concurrent POI mutation
// can never tear a plan.
func (pl *Planner) tileMSRSnap(ws *Workspace, cache *nbrcache.Cache, snap *Snapshot, users []geom.Point, dirs []Direction) (Plan, error) {
	if len(dirs) != len(users) {
		// Missing or mismatched headings: fall back to zero-value
		// directions (Options.Theta, heading 0) exactly as a nil dirs.
		dirs = nil
	}

	var plan Plan
	ws.topk = pl.lookupTopK(ws, cache, snap, users, pl.topK())
	plan.Stats.GNNCalls++
	plan.Stats.IndexVersion = snap.version
	plan.Best = ws.topk[0]
	pl.growTiles(ws, snap, &plan, users, dirs, ws.topk, nil, nil)
	return plan, nil
}

// topK is the GNN depth of one tile computation: the runner-up for the
// safe-radius bound, or the best b+1 when buffering is enabled.
func (pl *Planner) topK() int {
	if pl.opts.Buffer > 0 && pl.opts.Buffer+1 > 2 {
		return pl.opts.Buffer + 1
	}
	return 2
}

// growTiles grows tile-based safe regions over the already-retrieved
// top-k GNN result and exports them into plan.
//
// With a nil dirty mask every user's region is grown from scratch — the
// full Tile-MSR of Algorithm 3. With a mask, only users marked dirty are
// grown: each clean user i keeps retained[i]'s tiles verbatim, and every
// hypothetical group of the verification step is formed against those
// retained tiles, so each accepted tile is verified against the mixed
// region set. Unlike the full run, a dirty user's seed tile is not
// inserted unconditionally: Theorem 1 justifies the unverified seed only
// when every region's extent is bounded by the fresh safe radius, which
// retained regions need not satisfy, so the seed is submitted to
// Divide-Verify like any other tile. Note that with several dirty users
// the earliest seeds are accepted vacuously — while a later dirty user's
// set is still empty, no complete tile group exists, and both verifiers
// report safe — so a tile's own acceptance check does NOT by itself
// cover all groups the final region set forms through it; soundness is
// transitive (see TileMSRIncInto for the full argument).
func (pl *Planner) growTiles(ws *Workspace, snap *Snapshot, plan *Plan, users []geom.Point, dirs []Direction, top []gnn.Result, retained []SafeRegion, dirty []bool) {
	rmax := pl.circleRadius(users, top)

	t := &ws.tp
	t.reset(pl, snap, &ws.gnn.RTree, users, top[0], &plan.Stats)

	// Degenerate case: a tie for the optimum leaves no safe radius. Each
	// user gets a point region; the next movement triggers an update.
	// (Incremental callers fall back to a full replan before reaching
	// here, so dirty is always nil on this path.)
	if rmax <= 0 {
		for i, u := range users {
			t.regions[i].Tiles = append(t.regions[i].Tiles, geom.Rect{Min: u, Max: u})
		}
		plan.Regions = exportTiles(t.regions)
		t.release()
		return
	}

	// Seed clean users' regions with their retained tiles before any
	// verification, so hypothetical groups and the lazily-built Sum memo
	// tables see the mixed region set from the start.
	if dirty != nil {
		for i := range users {
			if !dirty[i] {
				t.regions[i].Tiles = append(t.regions[i].Tiles, retained[i].Tiles...)
			}
		}
	}

	if pl.opts.Buffer > 0 {
		t.initBuffer(pl.opts.Buffer, top)
	}

	delta := math.Sqrt2 * rmax
	if pl.opts.Aggregate == gnn.Sum {
		t.resetSumMemo(len(users))
	}
	orderings := ws.resizeOrderings(len(users))
	live := 0
	exhausted := ws.resizeExhausted(len(users))
	for i, u := range users {
		if dirty != nil && !dirty[i] {
			exhausted[i] = true
			continue
		}
		live++
		seed := geom.RectAround(u, delta)
		if dirty == nil {
			t.addTile(i, seed) // seed: inscribed square of the rmax circle
		} else {
			t.divideVerify(i, seed, pl.opts.SplitLevel)
		}
		var heading, theta float64 = 0, pl.opts.Theta
		if dirs != nil {
			heading = dirs[i].Angle
			if dirs[i].Theta > 0 {
				theta = dirs[i].Theta
			}
		}
		orderings[i].reset(u, delta, pl.maxLayers(), pl.opts.Directed, heading, theta)
	}

	// Round-robin growth, α rounds (lines 5–11 of Algorithm 3).
	for round := 0; round < pl.opts.TileLimit && live > 0; round++ {
		for i := range users {
			if exhausted[i] {
				continue
			}
			for {
				s, ok := orderings[i].next()
				if !ok {
					exhausted[i] = true
					live--
					break
				}
				if t.divideVerify(i, s, pl.opts.SplitLevel) {
					orderings[i].markAccepted()
					break
				}
			}
		}
	}

	plan.Regions = exportTiles(t.regions)
	t.release()
}

// tilePlanning is the per-computation state of one Tile-MSR run. It lives
// inside a Workspace: every slice and map below is retained across runs
// and re-truncated by reset, so a warmed-up workspace plans without
// allocating.
type tilePlanning struct {
	pl    *Planner
	snap  *Snapshot      // pinned by the entry point for the whole run
	rts   *rtree.Scratch // index traversal scratch (shared with the GNN)
	users []geom.Point
	po    geom.Point
	poID  int
	poAgg float64 // ‖p°,U‖ under the aggregate
	stats *Stats

	// regions is the scratch region set under construction; per-user tile
	// slices keep their capacity across runs. exportTiles copies them out.
	regions []SafeRegion

	// Buffering state (Section 5.4): the best b+1 GNNs and the distance
	// thresholds τ_1 ≤ … ≤ τ_b of Algorithm 5 (τ_z is thresholds[z-1]).
	buffered   []gnn.Result
	thresholds []float64

	// Sum-MPN memoization (Section 6.3.1): per user, candidate POI id →
	// min over the user's current region tiles of ‖p′,l‖ − ‖p°,l‖.
	// sumMemo is nil for MAX runs; sumMemoStore retains the maps (cleared,
	// not dropped, between runs) so steady-state SUM planning reuses their
	// buckets.
	sumMemo      []map[int]float64
	sumMemoStore []map[int]float64

	// Scratch buffers for candidate retrieval and verification.
	candBuf []candidate
	ext     []float64
	bounds  []float64
	ts      tileSets     // hypothetical per-user tile sets
	oneTile [1]geom.Rect // backing array for the ts.users[i] = {s} singleton
	minDp   []float64    // gtVerifyMax per-user minima
	itIdx   []int        // itVerifyMax mixed-radix counter

	// Pruning queries passed (by stable pointer) to the R-tree search.
	maxQ maxPruneQuery
	sumQ sumPruneQuery
}

type candidate struct {
	id int
	p  geom.Point
}

// reset prepares the planning state for one computation, truncating every
// scratch buffer while keeping its capacity.
func (t *tilePlanning) reset(pl *Planner, snap *Snapshot, rts *rtree.Scratch, users []geom.Point, best gnn.Result, stats *Stats) {
	t.pl = pl
	t.snap = snap
	t.rts = rts
	t.users = users
	t.po = best.Item.P
	t.poID = best.Item.ID
	t.poAgg = best.Dist
	t.stats = stats
	t.buffered = nil
	t.thresholds = t.thresholds[:0]
	t.sumMemo = nil
	t.candBuf = t.candBuf[:0]
	t.maxQ.t = t
	t.sumQ.t = t

	m := len(users)
	t.regions = grown(t.regions, m)
	for i := range t.regions {
		t.regions[i].Kind = KindTiles
		t.regions[i].Circle = geom.Circle{}
		t.regions[i].Tiles = t.regions[i].Tiles[:0]
	}
}

// release drops the references a finished run would otherwise retain
// until the next reset: without it, an idle worker's workspace pins the
// caller's users slice, the planner, and — through the stats pointer —
// the whole escaped Plan, including its exported regions.
func (t *tilePlanning) release() {
	t.pl = nil
	t.snap = nil
	t.users = nil
	t.stats = nil
	t.buffered = nil
}

// resetSumMemo activates the Sum-MPN memo tables for m users, clearing
// (but retaining) the maps of previous runs.
func (t *tilePlanning) resetSumMemo(m int) {
	t.sumMemoStore = grown(t.sumMemoStore, m)
	t.sumMemo = t.sumMemoStore
	for _, mp := range t.sumMemo {
		clear(mp)
	}
}

// initBuffer stores the best b+1 meeting points (retrieved in the single
// index traversal of TileMSR) and precomputes the Algorithm 5 thresholds
//
//	τ_z = (‖p^{z+1},U‖ − ‖p°,U‖) / 2     (MAX, Definition 6)
//	τ_z = (‖p^{z+1},U‖ − ‖p°,U‖) / 2m   (SUM, Theorem 7)
//
// When the data set holds fewer than z+1 points, no POI outside the buffer
// exists and τ_z is unbounded.
func (t *tilePlanning) initBuffer(b int, top []gnn.Result) {
	t.buffered = top
	t.stats.IndexAccesses++

	denom := 2.0
	if t.pl.opts.Aggregate == gnn.Sum {
		denom = 2 * float64(len(t.users))
	}
	t.thresholds = t.thresholds[:0]
	for z := 1; z <= b; z++ {
		if z < len(t.buffered) {
			t.thresholds = append(t.thresholds, (t.buffered[z].Dist-t.poAgg)/denom)
		} else {
			t.thresholds = append(t.thresholds, math.Inf(1))
		}
	}
}

// addTile inserts tile s into user i's region and maintains the Sum-MPN
// memo tables (the Hx(p′) ← min{Fx, Hx(p′)} update of Algorithm 6).
func (t *tilePlanning) addTile(i int, s geom.Rect) {
	t.regions[i].Tiles = append(t.regions[i].Tiles, s)
	t.stats.TilesAccepted++
	if t.sumMemo != nil {
		for id, f := range t.sumMemo[i] {
			v := geom.FocalDiffMin(s, t.snap.points[id], t.po)
			if v < f {
				t.sumMemo[i][id] = v
			}
		}
	}
}

// divideVerify is Algorithm 2 (or Algorithm 5 when buffering is enabled):
// verify tile s for user i against every candidate POI; on failure quarter
// the tile and recurse down to split level 0.
func (t *tilePlanning) divideVerify(i int, s geom.Rect, level int) bool {
	if t.buffered != nil {
		return t.bufferDivideVerify(i, s, level)
	}
	cands := t.collectCandidates(i, s)
	if t.verifyAgainst(i, s, cands) {
		t.addTile(i, s)
		return true
	}
	return t.splitAndRecurse(i, s, level)
}

// bufferDivideVerify is Algorithm 5 (Buffer-Divide-Verify).
func (t *tilePlanning) bufferDivideVerify(i int, s geom.Rect, level int) bool {
	// dist ← max{‖ui,s‖max, max_j ‖uj,Rj‖max} (line 1).
	dist := s.MaxDist(t.users[i])
	for j := range t.users {
		if v := t.regions[j].MaxExtent(t.users[j]); v > dist {
			dist = v
		}
	}
	// Smallest slot z (1-based) with dist ≤ τ_z, by binary search (line 2).
	idx := sort.SearchFloat64s(t.thresholds, dist)
	if idx == len(t.thresholds) {
		// No slot: the tile violates the Theorem 4/7 condition (lines 3–4).
		t.stats.TilesRejected++
		return false
	}
	// Verify against P*₁..z − {p°} = buffered[1..idx] (line 5). idx==0
	// means even the circle-radius threshold covers dist, so no
	// competitor is reachable and the tile is trivially safe.
	t.candBuf = t.candBuf[:0]
	for c := 1; c <= idx && c < len(t.buffered); c++ {
		t.candBuf = append(t.candBuf, candidate{id: t.buffered[c].Item.ID, p: t.buffered[c].Item.P})
	}
	t.stats.CandidatesChecked += len(t.candBuf)
	if t.verifyAgainst(i, s, t.candBuf) {
		t.addTile(i, s)
		return true
	}
	return t.splitAndRecurse(i, s, level)
}

// splitAndRecurse implements lines 4–10 of Algorithm 2.
func (t *tilePlanning) splitAndRecurse(i int, s geom.Rect, level int) bool {
	if level <= 0 {
		t.stats.TilesRejected++
		return false
	}
	ok := false
	for _, sub := range s.Quadrants() {
		if t.divideVerify(i, sub, level-1) {
			ok = true
		}
	}
	if !ok {
		t.stats.TilesRejected++
	}
	return ok
}

// verifyAgainst runs Tile-Verify for every candidate and reports whether
// the tile is safe with respect to all of them.
func (t *tilePlanning) verifyAgainst(i int, s geom.Rect, cands []candidate) bool {
	if len(cands) == 0 {
		return true
	}
	if t.pl.opts.Aggregate == gnn.Sum {
		for _, c := range cands {
			t.stats.TileVerifies++
			if !t.sumTileVerify(i, s, c) {
				return false
			}
		}
		return true
	}
	m := len(t.users)
	t.ts.users = grown(t.ts.users, m)
	ts := tileSets{users: t.ts.users}
	t.oneTile[0] = s
	for j := range ts.users {
		if j == i {
			ts.users[j] = t.oneTile[:1]
		} else {
			ts.users[j] = t.regions[j].Tiles
		}
	}
	t.minDp = grown(t.minDp, m)
	t.itIdx = grown(t.itIdx, m)
	for _, c := range cands {
		t.stats.TileVerifies++
		var ok bool
		if t.pl.opts.GroupVerify {
			ok = gtVerifyMaxInto(t.minDp, ts, t.po, c.p)
		} else {
			ok = itVerifyMaxInto(t.itIdx, ts, t.po, c.p)
		}
		if !ok {
			return false
		}
	}
	return true
}

// sumTileVerify is Algorithm 6 (Sum-GT-Verify) with the hash-table
// memoization described in Section 6.3.1: the tile is safe w.r.t.
// candidate c iff F = F_x(s) + Σ_{j≠x} F_j ≥ 0, where F_j is the memoized
// minimum of ‖p′,l‖ − ‖p°,l‖ over user j's current region and F_x(s) the
// minimum over the new tile alone.
func (t *tilePlanning) sumTileVerify(i int, s geom.Rect, c candidate) bool {
	total := geom.FocalDiffMin(s, c.p, t.po)
	for j := range t.users {
		if j != i {
			total += t.sumRegionF(j, c)
		}
	}
	return total >= 0
}

// sumRegionF returns the memoized F_j value for candidate c.
func (t *tilePlanning) sumRegionF(j int, c candidate) float64 {
	memo := t.sumMemo[j]
	if memo == nil {
		memo = make(map[int]float64)
		t.sumMemo[j] = memo // aliases sumMemoStore, so the map survives resets
	}
	if f, ok := memo[c.id]; ok {
		return f
	}
	f := math.Inf(1)
	for _, tile := range t.regions[j].Tiles {
		if v := geom.FocalDiffMin(tile, c.p, t.po); v < f {
			f = v
		}
	}
	memo[c.id] = f
	return f
}

// maxPruneQuery implements the Theorem 3 candidate retrieval as an
// allocation-free rtree.PruneQuery over the planning state: keep a
// subtree only if its MBR can hold a point within bounds[j] of every
// user j.
type maxPruneQuery struct{ t *tilePlanning }

func (q *maxPruneQuery) Keep(r geom.Rect) bool {
	t := q.t
	for j, u := range t.users {
		if r.MinDist(u) > t.bounds[j] {
			return false
		}
	}
	return true
}

func (q *maxPruneQuery) VisitItem(it rtree.Item) bool {
	t := q.t
	if it.ID != t.poID {
		t.candBuf = append(t.candBuf, candidate{id: it.ID, p: it.P})
	}
	return true
}

// sumPruneQuery implements the Theorem 6 pruning rule: keep a subtree
// only if the summed minimum user distances stay within the bound.
type sumPruneQuery struct {
	t     *tilePlanning
	bound float64
}

func (q *sumPruneQuery) Keep(r geom.Rect) bool {
	sum := 0.0
	for _, u := range q.t.users {
		sum += r.MinDist(u)
	}
	return sum <= q.bound
}

func (q *sumPruneQuery) VisitItem(it rtree.Item) bool {
	t := q.t
	if it.ID != t.poID {
		t.candBuf = append(t.candBuf, candidate{id: it.ID, p: it.P})
	}
	return true
}

// collectCandidates retrieves the POIs that could displace p° given the
// hypothetical region group with s added to user i, traversing the R-tree
// with the Theorem 3 (MAX) or Theorem 6 (SUM) pruning rule. With pruning
// disabled it returns every non-result POI.
func (t *tilePlanning) collectCandidates(i int, s geom.Rect) []candidate {
	t.stats.IndexAccesses++
	t.candBuf = t.candBuf[:0]

	if !t.pl.opts.IndexPruning {
		for id, p := range t.snap.points {
			if id != t.poID && !t.snap.Deleted(id) {
				t.candBuf = append(t.candBuf, candidate{id: id, p: p})
			}
		}
		t.stats.CandidatesChecked += len(t.candBuf)
		return t.candBuf
	}

	// Extents r↑_j of the hypothetical regions.
	t.ext = t.ext[:0]
	for j, u := range t.users {
		e := t.regions[j].MaxExtent(u)
		if j == i {
			if v := s.MaxDist(u); v > e {
				e = v
			}
		}
		t.ext = append(t.ext, e)
	}

	if t.pl.opts.Aggregate == gnn.Max {
		// ‖p°,R‖⊤ over the hypothetical group.
		dmax := s.MaxDist(t.po)
		for j := range t.users {
			if j == i {
				continue
			}
			if v := t.regions[j].MaxDist(t.po); v > dmax {
				dmax = v
			}
		}
		t.bounds = t.bounds[:0]
		for _, e := range t.ext {
			t.bounds = append(t.bounds, dmax+e)
		}
		t.snap.tree.PrunedSearchInto(t.rts, &t.maxQ)
	} else {
		// Theorem 6: prune p when Σ‖p,uj‖ > ‖p°,U‖sum + 2Σ r↑_j.
		bound := t.poAgg
		for _, e := range t.ext {
			bound += 2 * e
		}
		t.sumQ.bound = bound
		t.snap.tree.PrunedSearchInto(t.rts, &t.sumQ)
	}
	t.stats.CandidatesChecked += len(t.candBuf)
	return t.candBuf
}
