package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/nbrcache"
)

// The deprecated TileMSR*/CircleMSR* entry points are thin wrappers over
// Planner.Plan; these fences pin that delegation byte-for-byte, so the
// wrappers can never drift from the one real planning path.

func plansEqual(a, b Plan) bool {
	if a.Best.Item.ID != b.Best.Item.ID ||
		a.Best.Item.P != b.Best.Item.P ||
		math.Float64bits(a.Best.Dist) != math.Float64bits(b.Best.Dist) {
		return false
	}
	return reflect.DeepEqual(a.Regions, b.Regions)
}

func TestWrappersDelegateToPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randomPoints(3000, rng)
	opts := DefaultOptions()
	opts.Directed = true
	pl := mustPlanner(t, pts, opts)
	ws := NewWorkspace()

	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(4)
		users := make([]geom.Point, m)
		dirs := make([]Direction, m)
		c := geom.Pt(0.2+0.6*rng.Float64(), 0.2+0.6*rng.Float64())
		for i := range users {
			users[i] = geom.Pt(c.X+(rng.Float64()-0.5)*0.05, c.Y+(rng.Float64()-0.5)*0.05)
			dirs[i] = Direction{Angle: rng.Float64() * 2 * math.Pi}
		}

		want, _, err := pl.Plan(ws, PlanRequest{Kind: KindTiles, Users: users, Dirs: dirs})
		if err != nil {
			t.Fatal(err)
		}
		got, err := pl.TileMSR(users, dirs)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(want, got) {
			t.Fatalf("trial %d: TileMSR diverged from Plan", trial)
		}
		got, err = pl.TileMSRInto(ws, users, dirs)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(want, got) {
			t.Fatalf("trial %d: TileMSRInto diverged from Plan", trial)
		}

		want, _, err = pl.Plan(ws, PlanRequest{Kind: KindCircle, Users: users})
		if err != nil {
			t.Fatal(err)
		}
		got, err = pl.CircleMSR(users)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(want, got) {
			t.Fatalf("trial %d: CircleMSR diverged from Plan", trial)
		}
		got, err = pl.CircleMSRInto(ws, users)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(want, got) {
			t.Fatalf("trial %d: CircleMSRInto diverged from Plan", trial)
		}
	}
}

func TestCachedWrappersDelegateToPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pts := randomPoints(3000, rng)
	pl := mustPlanner(t, pts, DefaultOptions())
	ws := NewWorkspace()
	cache := nbrcache.New(nbrcache.Config{MaxBytes: 1 << 20})
	pl.ShareCache(cache)

	for trial := 0; trial < 20; trial++ {
		users := make([]geom.Point, 3)
		c := geom.Pt(0.3+0.4*rng.Float64(), 0.3+0.4*rng.Float64())
		for i := range users {
			users[i] = geom.Pt(c.X+(rng.Float64()-0.5)*0.04, c.Y+(rng.Float64()-0.5)*0.04)
		}
		want, _, err := pl.Plan(ws, PlanRequest{Kind: KindTiles, Users: users, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		got, err := pl.TileMSRCachedInto(ws, cache, users, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(want, got) {
			t.Fatalf("trial %d: TileMSRCachedInto diverged from Plan", trial)
		}
		wantC, _, err := pl.Plan(ws, PlanRequest{Kind: KindCircle, Users: users, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		gotC, err := pl.CircleMSRCachedInto(ws, cache, users)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(wantC, gotC) {
			t.Fatalf("trial %d: CircleMSRCachedInto diverged from Plan", trial)
		}
	}
}

func TestIncWrappersDelegateToPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := randomPoints(3000, rng)
	pl := mustPlanner(t, pts, DefaultOptions())
	ws := NewWorkspace()

	// Two independent incremental states walked through identical
	// location streams must agree step by step: same outcome, same plan.
	var stWrap, stPlan PlanState
	users := make([]geom.Point, 3)
	c := geom.Pt(0.5, 0.5)
	for i := range users {
		users[i] = geom.Pt(c.X+(rng.Float64()-0.5)*0.04, c.Y+(rng.Float64()-0.5)*0.04)
	}
	for step := 0; step < 60; step++ {
		for i := range users {
			users[i] = geom.Pt(
				users[i].X+(rng.Float64()-0.5)*0.002,
				users[i].Y+(rng.Float64()-0.5)*0.002,
			)
		}
		want, wantOut, err := pl.Plan(ws, PlanRequest{Kind: KindCircle, Users: users, State: &stPlan})
		if err != nil {
			t.Fatal(err)
		}
		got, gotOut, err := pl.CircleMSRIncInto(ws, &stWrap, users)
		if err != nil {
			t.Fatal(err)
		}
		if gotOut != wantOut {
			t.Fatalf("step %d: outcome %v (wrapper) != %v (Plan)", step, gotOut, wantOut)
		}
		if !plansEqual(want, got) {
			t.Fatalf("step %d: CircleMSRIncInto diverged from Plan", step)
		}
	}
}
