package core

import (
	"math"

	"mpn/internal/geom"
	"mpn/internal/gnn"
)

// DominantMaxDist returns ‖p°,R‖⊤ = max_i ‖p°,Ri‖max (Definition 5,
// Eq. 4): an upper bound of the dominant distance of p° for every location
// instance in R.
func DominantMaxDist(regions []SafeRegion, p geom.Point) float64 {
	d := 0.0
	for _, r := range regions {
		if v := r.MaxDist(p); v > d {
			d = v
		}
	}
	return d
}

// DominantMinDist returns ‖p,R‖⊥ = max_i ‖p,Ri‖min (Definition 5, Eq. 3):
// a lower bound of the dominant distance of p for every location instance
// in R.
func DominantMinDist(regions []SafeRegion, p geom.Point) float64 {
	d := 0.0
	for _, r := range regions {
		if v := r.MinDist(p); v > d {
			d = v
		}
	}
	return d
}

// Verify is the conservative test of Lemma 1 for the MAX aggregate: it
// returns true only if the candidate p cannot beat p° for any location
// instance inside the regions. False may be a false negative (the test is
// conservative).
func Verify(regions []SafeRegion, po, p geom.Point) bool {
	return DominantMaxDist(regions, po) <= DominantMinDist(regions, p)
}

// VerifySum is the Sum-MPN analog of Verify: a conservative test that p
// cannot beat p° under the sum of distances. It lower-bounds
// Σ_i min_{l∈Ri} (‖p,l‖ − ‖p°,l‖) by summing per-region minima; the sum
// being non-negative proves p° keeps winning. For tile regions the
// per-region minimum uses the exact hyperbola minimization (Section
// 6.3.1); for circles it uses min ‖p,l‖ − max ‖p°,l‖ relaxation per
// region, which matches Theorem 5's derivation.
func VerifySum(regions []SafeRegion, po, p geom.Point) bool {
	total := 0.0
	for _, r := range regions {
		total += regionFocalDiffMin(r, p, po)
	}
	return total >= 0
}

// regionFocalDiffMin returns min over l ∈ R of ‖p,l‖ − ‖p°,l‖.
func regionFocalDiffMin(r SafeRegion, p, po geom.Point) float64 {
	if r.Kind == KindCircle {
		// Exact for disks: the minimum of the focal difference over a disk
		// of radius ρ centered at c is attained on the boundary circle;
		// bounding it by ‖p,c‖ − ‖p°,c‖ − 2ρ is conservative and tight
		// enough for Theorem 5 circles. (‖p,l‖ ≥ ‖p,c‖−ρ and ‖p°,l‖ ≤
		// ‖p°,c‖+ρ.)
		return p.Dist(r.Circle.C) - po.Dist(r.Circle.C) - 2*r.Circle.R
	}
	best := math.Inf(1)
	for _, t := range r.Tiles {
		if v := geom.FocalDiffMin(t, p, po); v < best {
			best = v
		}
	}
	return best
}

// VerifyAgg dispatches to Verify or VerifySum by aggregate.
func VerifyAgg(agg gnn.Aggregate, regions []SafeRegion, po, p geom.Point) bool {
	if agg == gnn.Max {
		return Verify(regions, po, p)
	}
	return VerifySum(regions, po, p)
}

// tileSets is the per-user tile collection used during tile verification:
// the new tile {s} for the user under extension and the existing region
// tiles for everyone else.
type tileSets struct {
	users [][]geom.Rect
}

// gtVerifyMax is the group tile verification for the MAX aggregate. It
// decides — exactly, in time linear in the total tile count — whether
// every tile group ⟨s1∈T1,…,sm∈Tm⟩ passes the Lemma 1 test for candidate
// p against p°.
//
// It is an algebraic restatement of Theorem 2's grouping argument: a group
// fails iff it contains an "attacker" tile t (of some user a) whose
// dominant max distance do(t)=‖p°,t‖max exceeds the group's dominant min
// distance. Choosing every other user's tile to minimize dp(·)=‖p,·‖min
// makes the group's dominant min as small as possible, namely
// max(dp(t), max_{k≠a} min_{t′∈Tk} dp(t′)). Hence some group fails iff
//
//	∃ a, t∈Ta :  do(t) > max( dp(t), max_{k≠a} minDp(k) ).
//
// Scanning all tiles with precomputed per-user minima (plus the top-2 of
// those minima to evaluate max_{k≠a} in O(1)) gives the exact answer with
// none of IT-Verify's exponential enumeration.
func gtVerifyMax(ts tileSets, po, p geom.Point) bool {
	return gtVerifyMaxInto(make([]float64, len(ts.users)), ts, po, p)
}

// gtVerifyMaxInto is gtVerifyMax with the per-user minima written into
// caller-owned scratch (len(minDp) must equal len(ts.users)), so the hot
// verification loop performs no allocations.
func gtVerifyMaxInto(minDp []float64, ts tileSets, po, p geom.Point) bool {
	m := len(ts.users)
	// Per-user minimum dp.
	for k, tiles := range ts.users {
		best := math.Inf(1)
		for _, t := range tiles {
			if v := t.MinDist(p); v < best {
				best = v
			}
		}
		minDp[k] = best
	}
	// Top-2 of minDp for O(1) "max excluding a".
	best1, best2 := math.Inf(-1), math.Inf(-1)
	arg1 := -1
	for k, v := range minDp {
		if v > best1 {
			best2 = best1
			best1, arg1 = v, k
		} else if v > best2 {
			best2 = v
		}
	}
	maxExcl := func(a int) float64 {
		if a == arg1 {
			return best2
		}
		return best1
	}

	const eps = 1e-12
	for a, tiles := range ts.users {
		floor := maxExcl(a)
		if m == 1 {
			floor = math.Inf(-1)
		}
		for _, t := range tiles {
			do := t.MaxDist(po)
			dp := t.MinDist(p)
			bound := dp
			if floor > bound {
				bound = floor
			}
			if do > bound+eps {
				return false
			}
		}
	}
	return true
}

// itVerifyMax is IT-Verify: the naive enumeration of every tile group with
// the Lemma 1 test applied per group. Exponential in the group size; used
// by the ablation benchmark and as the test oracle for gtVerifyMax.
func itVerifyMax(ts tileSets, po, p geom.Point) bool {
	return itVerifyMaxInto(make([]int, len(ts.users)), ts, po, p)
}

// itVerifyMaxInto is itVerifyMax with the mixed-radix counter in
// caller-owned scratch (len(idx) must equal len(ts.users)).
func itVerifyMaxInto(idx []int, ts tileSets, po, p geom.Point) bool {
	m := len(ts.users)
	// A user with no tiles yet means no complete tile group exists:
	// vacuously safe, matching gtVerifyMax (whose per-user minimum over
	// the empty set is +Inf). The incremental partial regrow reaches this
	// state while seeding the first of several dirty users.
	for _, tiles := range ts.users {
		if len(tiles) == 0 {
			return true
		}
	}
	for i := range idx {
		idx[i] = 0
	}
	const eps = 1e-12
	for {
		// Evaluate the current group.
		maxDo, maxDp := 0.0, 0.0
		for k := 0; k < m; k++ {
			t := ts.users[k][idx[k]]
			if v := t.MaxDist(po); v > maxDo {
				maxDo = v
			}
			if v := t.MinDist(p); v > maxDp {
				maxDp = v
			}
		}
		if maxDo > maxDp+eps {
			return false
		}
		// Advance the mixed-radix counter.
		k := 0
		for k < m {
			idx[k]++
			if idx[k] < len(ts.users[k]) {
				break
			}
			idx[k] = 0
			k++
		}
		if k == m {
			return true
		}
	}
}
