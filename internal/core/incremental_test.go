package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/gnn"
)

// incConfig is one cell of the differential grid: aggregate × directed ×
// buffered × region shape.
type incConfig struct {
	name   string
	circle bool
	mod    func(*Options)
}

func incConfigs() []incConfig {
	return []incConfig{
		{name: "tile/max", mod: nil},
		{name: "tile/max/directed/buffered", mod: func(o *Options) {
			o.Directed = true
			o.Theta = math.Pi / 3
			o.Buffer = 8
		}},
		{name: "tile/sum", mod: func(o *Options) { o.Aggregate = gnn.Sum }},
		{name: "tile/sum/directed/buffered", mod: func(o *Options) {
			o.Aggregate = gnn.Sum
			o.Directed = true
			o.Theta = math.Pi / 3
			o.Buffer = 8
		}},
		{name: "circle/max", circle: true},
		{name: "circle/sum", circle: true, mod: func(o *Options) { o.Aggregate = gnn.Sum }},
	}
}

// incStep advances the report stream: a mix of whole-group teleports
// (result-set churn → full replans), in-region jitter (kept plans), and
// single-user escapes (partial regrows).
func incStep(step int, users []geom.Point, rng *rand.Rand) {
	switch step % 6 {
	case 0: // teleport the whole group: the optimum almost surely moves
		c := geom.Pt(0.15+0.7*rng.Float64(), 0.15+0.7*rng.Float64())
		for i := range users {
			users[i] = geom.Pt(c.X+0.03*rng.Float64(), c.Y+0.03*rng.Float64())
		}
	case 3: // one user strides: escapes her region, optimum often survives
		i := step / 6 % len(users)
		a := rng.Float64() * 2 * math.Pi
		users[i] = geom.Pt(users[i].X+0.04*math.Cos(a), users[i].Y+0.04*math.Sin(a))
	case 5: // one user nudges: borderline escape
		i := (step/6 + 1) % len(users)
		a := rng.Float64() * 2 * math.Pi
		users[i] = geom.Pt(users[i].X+0.008*math.Cos(a), users[i].Y+0.008*math.Sin(a))
	case 4: // duplicate report: nobody moved at all
	default: // drift well inside the regions
		for i := range users {
			users[i] = geom.Pt(users[i].X+1e-6*rng.Float64(), users[i].Y-1e-6*rng.Float64())
		}
	}
}

// regionRetainedFrom reports whether got is a legal retained form of
// prev for a clean member on a partial outcome: byte-identical, or —
// when the cost heuristic shrank an oversized clean region — an
// ordered subset of prev's tiles. The shrink never reorders or
// rewrites surviving tiles, so an ordered-subsequence scan is exact.
func regionRetainedFrom(got, prev SafeRegion) bool {
	if reflect.DeepEqual(got, prev) {
		return true
	}
	if got.Kind != KindTiles || prev.Kind != KindTiles || len(got.Tiles) >= len(prev.Tiles) {
		return false
	}
	j := 0
	for _, s := range got.Tiles {
		for j < len(prev.Tiles) && prev.Tiles[j] != s {
			j++
		}
		if j == len(prev.Tiles) {
			return false
		}
		j++
	}
	return true
}

// TestIncrementalDifferential is the correctness fence of the incremental
// planner: randomized report streams across aggregates × directed ×
// buffered × region shape, with every incremental plan checked against an
// independent full replan of the same snapshot.
//
//   - The meeting point must always byte-match the full replan's (both
//     recompute the result set from scratch).
//   - A full-fallback outcome must produce regions byte-identical to the
//     full replan (it is one).
//   - A kept outcome must return the retained regions verbatim, with every
//     member still inside hers.
//   - A partial outcome must keep every clean member's region intact —
//     verbatim, or an ordered subset of its tiles when the cost
//     heuristic shrank oversized regions — and cover every member.
//   - Every plan, whatever the outcome, must satisfy the Definition 3
//     independence property on sampled location instances.
func TestIncrementalDifferential(t *testing.T) {
	for _, cfg := range incConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			pts := randomPoints(350, rng)
			opts := tileOpts(cfg.mod)
			opts.TileLimit = 8
			pl := mustPlanner(t, pts, opts)

			users := make([]geom.Point, 3)
			c := geom.Pt(0.5, 0.5)
			for i := range users {
				users[i] = geom.Pt(c.X+0.02*float64(i), c.Y-0.015*float64(i))
			}
			dirs := make([]Direction, len(users))

			var st PlanState
			ws := NewWorkspace()     // reused across incremental calls
			wsFull := NewWorkspace() // reused across reference replans
			var prev []SafeRegion
			counts := map[IncOutcome]int{}

			for step := 0; step < 72; step++ {
				incStep(step, users, rng)
				for i := range dirs {
					dirs[i] = Direction{Angle: rng.Float64() * 2 * math.Pi}
				}

				var plan, full Plan
				var out IncOutcome
				var err, errFull error
				if cfg.circle {
					plan, out, err = pl.CircleMSRIncInto(ws, &st, users)
					full, errFull = pl.CircleMSRInto(wsFull, users)
				} else {
					plan, out, err = pl.TileMSRIncInto(ws, &st, users, dirs)
					full, errFull = pl.TileMSRInto(wsFull, users, dirs)
				}
				if err != nil || errFull != nil {
					t.Fatalf("step %d: inc err %v, full err %v", step, err, errFull)
				}
				counts[out]++

				if plan.Best != full.Best {
					t.Fatalf("step %d (%v): meeting point diverged: inc %+v full %+v",
						step, out, plan.Best, full.Best)
				}
				switch out {
				case IncFull:
					if !reflect.DeepEqual(plan.Regions, full.Regions) {
						t.Fatalf("step %d: full-fallback regions differ from full replan", step)
					}
				case IncKept:
					if prev == nil || &plan.Regions[0] != &prev[0] {
						t.Fatalf("step %d: kept outcome did not return the retained regions", step)
					}
					for i, u := range users {
						if !plan.Regions[i].Contains(u) {
							t.Fatalf("step %d: kept region %d misses its user", step, i)
						}
					}
				case IncPartial:
					for i, u := range users {
						if !plan.Regions[i].Contains(u) {
							t.Fatalf("step %d: partial region %d misses its user", step, i)
						}
						if prev[i].Contains(u) && !regionRetainedFrom(plan.Regions[i], prev[i]) {
							t.Fatalf("step %d: clean member %d's region was regrown", step, i)
						}
					}
				}
				assertPlanSound(t, pts, plan, pl.Options().Aggregate, rng, 25)
				prev = plan.Regions
			}

			for _, out := range []IncOutcome{IncFull, IncPartial, IncKept} {
				if counts[out] == 0 {
					t.Fatalf("stream never exercised outcome %v (counts %v)", out, counts)
				}
			}
		})
	}
}

// TestIncrementalSingleMember runs the incremental planner over a
// one-member group: the smallest group must cycle through kept, partial,
// and full outcomes like any other.
func TestIncrementalSingleMember(t *testing.T) {
	for _, cfg := range []incConfig{
		{name: "tile"},
		{name: "circle", circle: true},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			pts := randomPoints(300, rng)
			pl := mustPlanner(t, pts, tileOpts(nil))

			users := []geom.Point{geom.Pt(0.5, 0.5)}
			var st PlanState
			ws := NewWorkspace()
			counts := map[IncOutcome]int{}
			for step := 0; step < 60; step++ {
				incStep(step, users, rng)
				var plan Plan
				var out IncOutcome
				var err error
				if cfg.circle {
					plan, out, err = pl.CircleMSRIncInto(ws, &st, users)
				} else {
					plan, out, err = pl.TileMSRIncInto(ws, &st, users, nil)
				}
				if err != nil {
					t.Fatal(err)
				}
				counts[out]++
				if len(plan.Regions) != 1 {
					t.Fatalf("step %d: %d regions for a single member", step, len(plan.Regions))
				}
				assertPlanSound(t, pts, plan, pl.Options().Aggregate, rng, 15)
			}
			if counts[IncKept] == 0 || counts[IncFull] == 0 {
				t.Fatalf("single-member stream too uniform: %v", counts)
			}
		})
	}
}

// TestIncrementalInvalidateForcesFull is the escape hatch: after
// Invalidate, the next call must take the full path and byte-match a
// from-scratch replan even though nothing moved.
func TestIncrementalInvalidateForcesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, tileOpts(nil))
	users := randomPoints(3, rng)

	var st PlanState
	ws := NewWorkspace()
	if _, out, err := pl.TileMSRIncInto(ws, &st, users, nil); err != nil || out != IncFull {
		t.Fatalf("first call: outcome %v err %v", out, err)
	}
	if _, out, err := pl.TileMSRIncInto(ws, &st, users, nil); err != nil || out != IncKept {
		t.Fatalf("unchanged locations: outcome %v err %v", out, err)
	}
	st.Invalidate()
	if st.Valid() {
		t.Fatal("Invalidate left the state valid")
	}
	plan, out, err := pl.TileMSRIncInto(ws, &st, users, nil)
	if err != nil || out != IncFull {
		t.Fatalf("after Invalidate: outcome %v err %v", out, err)
	}
	full, err := pl.TileMSRInto(NewWorkspace(), users, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Regions, full.Regions) {
		t.Fatal("forced-full plan differs from a from-scratch replan")
	}
}

// TestIncrementalStateMismatches: membership churn (size change) and a
// region-kind mismatch must both force the full path rather than
// validating against unusable state.
func TestIncrementalStateMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, tileOpts(nil))
	ws := NewWorkspace()

	var st PlanState
	users := randomPoints(3, rng)
	if _, out, err := pl.TileMSRIncInto(ws, &st, users, nil); err != nil || out != IncFull {
		t.Fatalf("seed: outcome %v err %v", out, err)
	}
	// One member left: the retained three-region plan is unusable.
	if _, out, err := pl.TileMSRIncInto(ws, &st, users[:2], nil); err != nil || out != IncFull {
		t.Fatalf("size churn: outcome %v err %v", out, err)
	}
	// Tile state fed to the circle planner: kind mismatch.
	if _, out, err := pl.CircleMSRIncInto(ws, &st, users[:2]); err != nil || out != IncFull {
		t.Fatalf("kind mismatch: outcome %v err %v", out, err)
	}
	// And now the state is circular: the tile planner must replan fully.
	if _, out, err := pl.TileMSRIncInto(ws, &st, users[:2], nil); err != nil || out != IncFull {
		t.Fatalf("kind mismatch (tile over circle state): outcome %v err %v", out, err)
	}
	if _, out, err := pl.TileMSRIncInto(ws, &st, users[:2], nil); err != nil || out != IncKept {
		t.Fatalf("recovery: outcome %v err %v", out, err)
	}
	if _, _, err := pl.TileMSRIncInto(ws, &st, nil, nil); err != ErrNoUsers {
		t.Fatalf("want ErrNoUsers, got %v", err)
	}
	if _, _, err := pl.CircleMSRIncInto(ws, &st, nil); err != ErrNoUsers {
		t.Fatalf("want ErrNoUsers, got %v", err)
	}
}

// TestIncrementalMultiDirtyITVerify: regression test for the IT-Verify
// ablation (GroupVerify=false) crashing during a partial regrow with two
// simultaneously dirty members — the first dirty seed used to be
// verified while the second dirty member's region was still empty, and
// the tile-group enumeration indexed into the empty set. The drifting
// two-member stream below panicked at many seeds before the empty-set
// guard in itVerifyMaxInto; it also cross-checks soundness and clean
// -region preservation on every partial outcome.
func TestIncrementalMultiDirtyITVerify(t *testing.T) {
	for _, seed := range []int64{1, 2, 4} {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(500, rng)
		pl := mustPlanner(t, pts, tileOpts(func(o *Options) { o.GroupVerify = false }))
		users := randomPoints(3, rng)
		var st PlanState
		ws := NewWorkspace()
		if _, _, err := pl.TileMSRIncInto(ws, &st, users, nil); err != nil {
			t.Fatal(err)
		}
		sawPartial := false
		for step := 0; step < 40; step++ {
			d := 0.002 + 0.002*float64(step%5)
			users[0] = geom.Pt(users[0].X+d*rng.Float64(), users[0].Y-d*rng.Float64())
			users[1] = geom.Pt(users[1].X-d*rng.Float64(), users[1].Y+d*rng.Float64())
			prevClean := st.Regions()[2]
			plan, out, err := pl.TileMSRIncInto(ws, &st, users, nil)
			if err != nil {
				t.Fatal(err)
			}
			if out == IncPartial {
				sawPartial = true
				// Member 2 never moves, so she is always the clean one.
				if !regionRetainedFrom(plan.Regions[2], prevClean) {
					t.Fatalf("seed %d step %d: clean member's region changed", seed, step)
				}
			}
			assertPlanSound(t, pts, plan, gnn.Max, rng, 15)
		}
		if !sawPartial {
			t.Fatalf("seed %d: stream never hit the partial path", seed)
		}
	}
}

// TestIncrementalWorkspaceIndependence: an incremental stream driven
// through a dirty, reused workspace must produce exactly the plans of
// the same stream driven through fresh workspaces — the PR 2 differential
// extended to the incremental entry points.
func TestIncrementalWorkspaceIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, tileOpts(func(o *Options) { o.Buffer = 8 }))

	users := randomPoints(3, rng)
	snapshots := make([][]geom.Point, 40)
	for s := range snapshots {
		incStep(s, users, rng)
		snapshots[s] = append([]geom.Point(nil), users...)
	}

	var stA, stB PlanState
	wsA := NewWorkspace()
	for s, snap := range snapshots {
		planA, outA, errA := pl.TileMSRIncInto(wsA, &stA, snap, nil)
		planB, outB, errB := pl.TileMSRIncInto(NewWorkspace(), &stB, snap, nil)
		if errA != nil || errB != nil {
			t.Fatalf("step %d: %v %v", s, errA, errB)
		}
		if outA != outB {
			t.Fatalf("step %d: outcome diverged %v vs %v", s, outA, outB)
		}
		if planA.Best != planB.Best || !reflect.DeepEqual(planA.Regions, planB.Regions) {
			t.Fatalf("step %d: plans diverged across workspaces", s)
		}
	}
}
