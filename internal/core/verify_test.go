package core

import (
	"math"
	"math/rand"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/gnn"
)

func TestDominantDistances(t *testing.T) {
	regions := []SafeRegion{
		CircleRegion(geom.Pt(0, 0), 1),
		TileRegion(geom.RectAround(geom.Pt(5, 0), 2)),
	}
	p := geom.Pt(0, 0)
	// ‖p,R1‖max = 1 (circle), ‖p,R2‖max = dist to far corner (6,1) = √37.
	wantMax := math.Hypot(6, 1)
	if got := DominantMaxDist(regions, p); math.Abs(got-wantMax) > 1e-12 {
		t.Fatalf("DominantMaxDist=%v want %v", got, wantMax)
	}
	// ‖p,R1‖min = 0 (p is the center), ‖p,R2‖min = 4.
	if got := DominantMinDist(regions, p); got != 4 {
		t.Fatalf("DominantMinDist=%v want 4", got)
	}
}

func TestVerifyAggDispatch(t *testing.T) {
	regions := []SafeRegion{CircleRegion(geom.Pt(0, 0), 0.1)}
	po := geom.Pt(0.2, 0)
	far := geom.Pt(10, 0)
	if !VerifyAgg(gnn.Max, regions, po, far) {
		t.Fatal("max dispatch")
	}
	if !VerifyAgg(gnn.Sum, regions, po, far) {
		t.Fatal("sum dispatch")
	}
	near := geom.Pt(0.2001, 0.0001)
	// Both aggregates should reject a competitor essentially on top of p°
	// with a region that can move past the bisector.
	if VerifyAgg(gnn.Max, regions, po, near) {
		t.Fatal("max accepted an unsafe competitor")
	}
}

// VerifySum on circle regions uses the conservative 2R relaxation; it
// must never accept something the exact tile-based evaluation rejects on
// an inscribed square (which is a subset, so acceptance of the circle
// implies safety of the square).
func TestVerifySumCircleConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	accepted := 0
	for trial := 0; trial < 2000; trial++ {
		c := geom.Circle{
			C: geom.Pt(rng.Float64(), rng.Float64()),
			R: rng.Float64()*0.1 + 0.001,
		}
		regions := []SafeRegion{
			{Kind: KindCircle, Circle: c},
			CircleRegion(geom.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.1),
		}
		po := geom.Pt(rng.Float64(), rng.Float64())
		p := geom.Pt(rng.Float64(), rng.Float64())
		if !VerifySum(regions, po, p) {
			continue
		}
		accepted++
		// Sample instances inside the circles.
		for s := 0; s < 30; s++ {
			inst := make([]geom.Point, len(regions))
			for i, r := range regions {
				inst[i] = samplePoint(r, rng)
			}
			if gnn.Sum.PointDist(po, inst) > gnn.Sum.PointDist(p, inst)+1e-9 {
				t.Fatal("VerifySum circle path accepted an unsafe configuration")
			}
		}
	}
	if accepted == 0 {
		t.Fatal("vacuous")
	}
}

// Lemma 1's proof structure: the dominant distances bracket the true
// dominant distance for any instance.
func TestDominantDistanceBracketing(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 500; trial++ {
		m := 2 + rng.Intn(3)
		regions := make([]SafeRegion, m)
		for i := range regions {
			regions[i] = TileRegion(geom.RectAround(
				geom.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.2+0.01))
		}
		p := geom.Pt(rng.Float64()*2-0.5, rng.Float64()*2-0.5)
		lo := DominantMinDist(regions, p)
		hi := DominantMaxDist(regions, p)
		for s := 0; s < 20; s++ {
			inst := make([]geom.Point, m)
			for i := range inst {
				inst[i] = samplePoint(regions[i], rng)
			}
			d := gnn.Max.PointDist(p, inst)
			if d < lo-1e-9 || d > hi+1e-9 {
				t.Fatalf("dominant distance %v outside [%v, %v]", d, lo, hi)
			}
		}
	}
}

// The Fig. 6b scenario: a region group that fails the plain Lemma 1 test
// but passes after subdividing the offending region — the motivation for
// Divide-Verify.
func TestSubdivisionRescuesVerification(t *testing.T) {
	// Construct: u2's region R2 straddles the bisector between p° and p1
	// so that ‖p°,R2‖max > ‖p1,R2‖min, but each quadrant of R2 verifies
	// together with the others.
	po := geom.Pt(0, 0)
	p1 := geom.Pt(4, 0)
	r1 := TileRegion(geom.RectAround(geom.Pt(0.2, 1.2), 0.2))
	r3 := TileRegion(geom.RectAround(geom.Pt(-0.2, -1.2), 0.2))
	big := geom.RectAround(geom.Pt(1.0, 0), 1.6) // wide tile near the bisector
	r2 := TileRegion(big)

	if Verify([]SafeRegion{r1, r2, r3}, po, p1) {
		t.Skip("construction did not fail the coarse test; geometry drifted")
	}
	// Quadrant-level verification via the exact group check: every
	// quadrant that individually passes may be kept; the union of kept
	// quadrants should be non-empty (the left half of the tile).
	kept := 0
	for _, q := range big.Quadrants() {
		if ExactVerify([]SafeRegion{r1, r2, r3}, 1, q, po, p1) {
			kept++
		}
	}
	if kept == 0 {
		t.Fatal("no quadrant passed — Divide-Verify would lose the whole tile")
	}
	if kept == 4 {
		t.Fatal("all quadrants passed — scenario failed to exercise subdivision")
	}
}

// ExactVerify must agree with brute-force instance sampling in the
// rejecting direction too: when it rejects, some instance must actually
// prefer p (completeness up to sampling).
func TestExactVerifyCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	checkedRejections := 0
	for trial := 0; trial < 800 && checkedRejections < 150; trial++ {
		regions := randomTileRegions(rng, 2)
		i := rng.Intn(2)
		s := geom.RectAround(geom.Pt(rng.Float64(), rng.Float64()), 0.05)
		po := geom.Pt(rng.Float64(), rng.Float64())
		p := geom.Pt(rng.Float64(), rng.Float64())
		if ExactVerify(regions, i, s, po, p) {
			continue
		}
		// Rejected: find a witness instance by corner enumeration of the
		// participating tiles (the extreme distances are attained at
		// corners or closest points, so grid-sample densely instead).
		witness := false
		for a := 0; a < 300 && !witness; a++ {
			inst := make([]geom.Point, 2)
			for j := range inst {
				var tiles []geom.Rect
				if j == i {
					tiles = []geom.Rect{s}
				} else {
					tiles = regions[j].Tiles
				}
				tile := tiles[rng.Intn(len(tiles))]
				inst[j] = geom.Pt(
					tile.Min.X+rng.Float64()*tile.Width(),
					tile.Min.Y+rng.Float64()*tile.Height(),
				)
			}
			if gnn.Max.PointDist(po, inst) > gnn.Max.PointDist(p, inst)+1e-9 {
				witness = true
			}
		}
		if witness {
			checkedRejections++
		}
		// Absence of a sampled witness is possible for boundary-tight
		// rejections; tolerate them but require most rejections to be
		// witnessed.
	}
	if checkedRejections < 50 {
		t.Fatalf("only %d witnessed rejections — exact verifier may be too conservative", checkedRejections)
	}
}
