package core

import (
	"math/rand"
	"testing"

	"mpn/internal/geom"
)

// epochPlanner builds a small deterministic planner for the epoch tests.
func epochPlanner(t *testing.T, buffer int) *Planner {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	pois := make([]geom.Point, 2000)
	for i := range pois {
		pois[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	opts := DefaultOptions()
	opts.TileLimit = 8
	opts.Buffer = buffer
	planner, err := NewPlanner(pois, opts)
	if err != nil {
		t.Fatal(err)
	}
	return planner
}

// TestEpochSemantics drives the incremental tile planner through the
// kept / partial / full outcomes and asserts the epoch contract: kept
// advances nothing, partial advances exactly the regrown slots, a full
// replan advances every slot whose content changed, and epochs are
// monotone throughout.
func TestEpochSemantics(t *testing.T) {
	planner := epochPlanner(t, 30)
	ws := NewWorkspace()
	var st PlanState

	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.51), geom.Pt(0.49, 0.53)}
	if _, out, err := planner.TileMSRIncInto(ws, &st, users, nil); err != nil || out != IncFull {
		t.Fatalf("first call: out=%v err=%v", out, err)
	}
	epochs := append([]uint64(nil), st.Epochs()...)
	if len(epochs) != len(users) {
		t.Fatalf("epoch vector len=%d want %d", len(epochs), len(users))
	}
	for i, e := range epochs {
		if e != 1 {
			t.Fatalf("slot %d initial epoch %d, want 1", i, e)
		}
	}

	// In-region jitter: kept, epochs untouched.
	jit := make([]geom.Point, len(users))
	copy(jit, users)
	jit[1] = geom.Pt(users[1].X+1e-6, users[1].Y-1e-6)
	if !st.Regions()[1].Contains(jit[1]) {
		t.Skip("jitter escaped the region; workload unsuitable")
	}
	_, out, err := planner.TileMSRIncInto(ws, &st, jit, nil)
	if err != nil || out != IncKept {
		t.Fatalf("jitter: out=%v err=%v", out, err)
	}
	for i, e := range st.Epochs() {
		if e != epochs[i] {
			t.Fatalf("kept plan advanced slot %d: %d → %d", i, epochs[i], e)
		}
	}

	// Walk user 0 just outside her region. A partial regrow must advance
	// the dirty slot and only slots whose regions actually changed; a
	// full fallback advances everyone (the regions were all regrown).
	esc := make([]geom.Point, len(users))
	copy(esc, users)
	r0 := st.Regions()[0]
	step := 1e-4
	for r0.Contains(esc[0]) {
		esc[0] = geom.Pt(esc[0].X+step, esc[0].Y+step)
		step *= 2
		if step > 1 {
			t.Fatal("could not escape region 0")
		}
	}
	prevRegions := append([]SafeRegion(nil), st.Regions()...)
	_, out, err = planner.TileMSRIncInto(ws, &st, esc, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := st.Epochs()
	switch out {
	case IncPartial:
		if after[0] != epochs[0]+1 {
			t.Fatalf("dirty slot 0 epoch %d, want %d", after[0], epochs[0]+1)
		}
		for i := 1; i < len(after); i++ {
			changed := !regionEqual(prevRegions[i], st.Regions()[i])
			advanced := after[i] != epochs[i]
			if changed != advanced {
				t.Fatalf("slot %d: changed=%v advanced=%v", i, changed, advanced)
			}
		}
	case IncFull:
		for i := range after {
			changed := !regionEqual(prevRegions[i], st.Regions()[i])
			if changed && after[i] == epochs[i] {
				t.Fatalf("full replan changed slot %d without advancing its epoch", i)
			}
		}
	default:
		t.Fatalf("escape produced %v", out)
	}
	for i := range after {
		if after[i] < epochs[i] {
			t.Fatalf("slot %d epoch went backwards: %d → %d", i, epochs[i], after[i])
		}
	}
}

// TestEpochInvalidateAndChurn covers the reset paths: Invalidate keeps
// the vector monotone across the forced replan, and a group-size change
// restarts every slot past the old maximum.
func TestEpochInvalidateAndChurn(t *testing.T) {
	planner := epochPlanner(t, 30)
	ws := NewWorkspace()
	var st PlanState

	users := []geom.Point{geom.Pt(0.4, 0.4), geom.Pt(0.43, 0.41)}
	if _, _, err := planner.TileMSRIncInto(ws, &st, users, nil); err != nil {
		t.Fatal(err)
	}
	before := append([]uint64(nil), st.Epochs()...)

	st.Invalidate()
	if _, out, err := planner.TileMSRIncInto(ws, &st, users, nil); err != nil || out != IncFull {
		t.Fatalf("post-Invalidate: out=%v err=%v", out, err)
	}
	for i, e := range st.Epochs() {
		if e <= before[i] {
			t.Fatalf("slot %d epoch %d did not advance past %d after Invalidate", i, e, before[i])
		}
	}

	// Membership churn: one more user. Every slot restarts past the old
	// maximum, so a coordinator that kept per-slot epochs can never
	// confuse an old slot's region with a new one's.
	prevMax := uint64(0)
	for _, e := range st.Epochs() {
		if e > prevMax {
			prevMax = e
		}
	}
	grown := append(append([]geom.Point(nil), users...), geom.Pt(0.45, 0.44))
	if _, out, err := planner.TileMSRIncInto(ws, &st, grown, nil); err != nil || out != IncFull {
		t.Fatalf("churn: out=%v err=%v", out, err)
	}
	if len(st.Epochs()) != len(grown) {
		t.Fatalf("epoch vector len=%d want %d", len(st.Epochs()), len(grown))
	}
	for i, e := range st.Epochs() {
		if e <= prevMax {
			t.Fatalf("slot %d epoch %d not past old max %d after churn", i, e, prevMax)
		}
	}
}

// TestEpochCircleKeptAndPartial mirrors the contract for the circle
// planner: a kept plan advances nothing; a partial advances exactly the
// dirty member.
func TestEpochCircleKeptAndPartial(t *testing.T) {
	planner := epochPlanner(t, 0)
	ws := NewWorkspace()
	var st PlanState

	users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.505, 0.502)}
	if _, out, err := planner.CircleMSRIncInto(ws, &st, users); err != nil || out != IncFull {
		t.Fatalf("first: out=%v err=%v", out, err)
	}
	base := append([]uint64(nil), st.Epochs()...)

	if _, out, err := planner.CircleMSRIncInto(ws, &st, users); err != nil || out != IncKept {
		t.Skipf("same-location recheck not kept (out=%v err=%v)", out, err)
	}
	for i, e := range st.Epochs() {
		if e != base[i] {
			t.Fatalf("kept circle plan advanced slot %d", i)
		}
	}

	// Nudge user 1 just outside her circle, hunting for an IncPartial.
	r := st.Regions()[1]
	loc := users[1]
	step := 1e-5
	for r.Contains(loc) {
		loc = geom.Pt(loc.X+step, loc.Y)
		step *= 2
		if step > 1 {
			t.Fatal("never escaped circle")
		}
	}
	moved := []geom.Point{users[0], loc}
	_, out, err := planner.CircleMSRIncInto(ws, &st, moved)
	if err != nil {
		t.Fatal(err)
	}
	if out == IncPartial {
		after := st.Epochs()
		if after[1] != base[1]+1 {
			t.Fatalf("dirty circle slot epoch %d, want %d", after[1], base[1]+1)
		}
		if after[0] != base[0] {
			t.Fatalf("clean circle slot advanced: %d → %d", base[0], after[0])
		}
	}
}
