package core

import (
	"sync"

	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/nbrcache"
)

// Workspace carries all per-computation scratch state of the safe-region
// planners: the typed best-first heap and explicit traversal stack of the
// R-tree searches, the top-k GNN result buffer, the candidate buffer,
// extent/bound slices and hypothetical tile sets of the verification
// step, the per-user tile orderings, and the Sum-MPN memo tables.
//
// The *Into planner entry points (TileMSRInto, CircleMSRInto) draw every
// piece of mutable state from the workspace, so a caller that reuses one
// workspace across computations — the engine's workers each own one for
// their whole lifetime — reaches a steady state of near-zero allocations
// per plan: only the returned Plan's regions are freshly allocated
// (exactly two allocations: one SafeRegion header slice and one shared
// tile arena), making the result safe to retain after the workspace is
// reused.
//
// The zero value is ready to use. A Workspace is not safe for concurrent
// use; give each goroutine its own, or borrow one from the package pool
// with GetWorkspace/PutWorkspace.
type Workspace struct {
	gnn  gnn.Scratch
	nbr  nbrcache.Scratch
	topk []gnn.Result

	tp tilePlanning

	orderings []tileOrdering
	exhausted []bool
	dirty     []bool

	// Scratch of the retained-region shrink (see shrinkRetained): the
	// shrunk region headers, the (distance, index) selection candidates,
	// the chosen tile indices, and the tile arena the shrunk regions
	// point into. All valid only until growTiles seeds from them.
	shrunk      []SafeRegion
	shrinkSel   shrinkSelection
	shrinkIdx   []int
	shrinkTiles []geom.Rect

	// net is the registered network backend's scratch slot (see
	// NetScratch): resumable Dijkstra searches, candidate buffers, and
	// interval arenas whose concrete type core does not know.
	net any
}

// NewWorkspace returns an empty workspace. Long-lived computation loops
// (one goroutine, many plans) should construct one and reuse it.
func NewWorkspace() *Workspace { return new(Workspace) }

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace borrows a workspace from the package pool. Pair with
// PutWorkspace. The pooled path is what the non-Into entry points
// (TileMSR, CircleMSR) and the engine's synchronous update path use, so
// occasional callers share warmed-up scratch without owning one.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// PutWorkspace returns ws to the package pool. The caller must not use
// ws, nor any Plan aliasing it (none: plans are exported by copy), after
// the call.
func PutWorkspace(ws *Workspace) { wsPool.Put(ws) }

// NetScratch exposes the workspace's backend-owned scratch slot. The
// road-network backend stores its reusable planning state (resumable
// per-member Dijkstra searches, landmark-ranked candidate buffers,
// interval arenas) here, so network plans reach the same steady state of
// near-zero allocations the Euclidean planners get from the typed fields
// — without core depending on the backend's types. The slot follows the
// workspace's lifecycle: per goroutine, reused across plans, recycled
// through the pool.
func (ws *Workspace) NetScratch() *any { return &ws.net }

// grown returns s with length exactly m, preserving capacity (and, for
// indices below the old capacity, contents — callers overwrite or clear
// what they read). This is the one idiom for sizing workspace scratch:
// no allocation once the slice has grown to its working size.
func grown[T any](s []T, m int) []T {
	if cap(s) < m {
		s = append(s[:cap(s)], make([]T, m-cap(s))...)
	}
	return s[:m]
}

// resizeOrderings returns the workspace's ordering slice sized to m; the
// caller resets every element before use.
func (ws *Workspace) resizeOrderings(m int) []tileOrdering {
	ws.orderings = grown(ws.orderings, m)
	return ws.orderings
}

// resizeExhausted returns the workspace's exhausted-flag slice sized to m
// and cleared.
func (ws *Workspace) resizeExhausted(m int) []bool {
	ws.exhausted = grown(ws.exhausted, m)
	for i := range ws.exhausted {
		ws.exhausted[i] = false
	}
	return ws.exhausted
}

// resizeDirty returns the workspace's dirty-user mask sized to m; the
// incremental planner writes every element before reading.
func (ws *Workspace) resizeDirty(m int) []bool {
	ws.dirty = grown(ws.dirty, m)
	return ws.dirty
}

// resizeShrunk returns the workspace's shrunk-region slice sized to m;
// shrinkRetained writes every element before the slice is read.
func (ws *Workspace) resizeShrunk(m int) []SafeRegion {
	ws.shrunk = grown(ws.shrunk, m)
	return ws.shrunk
}

// shrinkCand is one selection candidate of the retained-region shrink:
// a tile's distance from the user and its position in the region.
type shrinkCand struct {
	d   float64
	idx int
}

// shrinkSelection sorts shrink candidates by (distance, original index);
// it lives inside the Workspace so sort.Sort takes an already-allocated
// pointer and the shrink path stays allocation-free in steady state.
type shrinkSelection struct{ c []shrinkCand }

func (s *shrinkSelection) Len() int      { return len(s.c) }
func (s *shrinkSelection) Swap(i, j int) { s.c[i], s.c[j] = s.c[j], s.c[i] }
func (s *shrinkSelection) Less(i, j int) bool {
	if s.c[i].d != s.c[j].d {
		return s.c[i].d < s.c[j].d
	}
	return s.c[i].idx < s.c[j].idx
}

// exportTiles deep-copies the scratch regions into exactly two fresh
// allocations — one SafeRegion header slice and one geom.Rect arena
// shared by all regions — so the returned plan does not alias workspace
// memory and is safe to retain indefinitely.
func exportTiles(scratch []SafeRegion) []SafeRegion {
	total := 0
	for i := range scratch {
		total += len(scratch[i].Tiles)
	}
	arena := make([]geom.Rect, 0, total)
	out := make([]SafeRegion, len(scratch))
	for i := range scratch {
		start := len(arena)
		arena = append(arena, scratch[i].Tiles...)
		out[i] = SafeRegion{Kind: KindTiles, Tiles: arena[start:len(arena):len(arena)]}
	}
	return out
}
