package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"mpn/internal/geom"
	"mpn/internal/nbrcache"
	"mpn/internal/rtree"
)

// Snapshot is one immutable published state of the planner's POI set: an
// R-tree, the id-indexed point table it refers into, the tombstone set,
// and the mutation version the pair corresponds to. Readers pin a
// snapshot with Planner.Acquire, traverse it freely — nothing it
// references is ever mutated while pinned — and Release it when done.
// The planning entry points do this internally; Acquire exists for
// callers that need a coherent multi-read view (tests, diagnostics,
// exporters).
type Snapshot struct {
	tree *rtree.Tree
	// points is id-indexed: tree item ids index it directly. Slots of
	// deleted POIs retain their last location (ids are never reused), so
	// a tombstoned slot is stale data, not garbage.
	points  []geom.Point
	deleted []bool // nil when the snapshot holds no tombstones
	live    int
	version uint64

	// refs counts readers currently pinning the snapshot. The writer
	// recycles a retired snapshot's tree as its next shadow only after
	// refs drains to zero.
	refs atomic.Int64

	// churn counts mutations applied to tree since its last STR repack;
	// writer-owned bookkeeping for the Rebuild load-balance heuristic.
	churn int
}

// Tree returns the snapshot's R-tree. Valid until Release.
func (s *Snapshot) Tree() *rtree.Tree { return s.tree }

// Points returns the snapshot's id-indexed point table; slots of deleted
// POIs (see Deleted) hold their last location. Valid until Release.
func (s *Snapshot) Points() []geom.Point { return s.points }

// Deleted reports whether the table slot id is tombstoned in this
// snapshot. Bounds-checked: tombstone tables are shared across
// publishes (see ApplyPOIs), so a snapshot's table may be shorter than
// its point table — absent slots are live.
func (s *Snapshot) Deleted(id int) bool {
	return id >= 0 && id < len(s.deleted) && s.deleted[id]
}

// Live returns the number of POIs the snapshot's index holds.
func (s *Snapshot) Live() int { return s.live }

// Version returns the snapshot's mutation version — always equal to its
// tree's version, by the swap protocol.
func (s *Snapshot) Version() uint64 { return s.version }

// Release unpins the snapshot. The caller must not touch the snapshot,
// its tree, or its point table afterwards.
func (s *Snapshot) Release() { s.refs.Add(-1) }

// Acquire pins and returns the current snapshot. The load-increment-
// recheck loop closes the publication race: if the writer swapped the
// pointer between the load and the increment, the increment landed on a
// retired snapshot whose tree the writer may be about to recycle, so the
// reader backs off and pins the fresh one instead. (The writer reads
// refs only after its swap; Go's atomics are sequentially consistent, so
// an increment that precedes a successful re-check is visible to every
// later refs read.)
func (pl *Planner) Acquire() *Snapshot {
	for {
		s := pl.snap.Load()
		s.refs.Add(1)
		if pl.snap.Load() == s {
			return s
		}
		s.refs.Add(-1)
	}
}

// mutation is one element of a publish batch, replayed onto the lagging
// buffer tree at the next publish.
type mutation struct {
	insert bool
	id     int
	p      geom.Point
}

// shadowState is the writer's lagging buffer: the tree retired by the
// previous publish, the batch that publish applied (which this tree has
// not seen yet), and the retired snapshot whose readers must drain
// before the tree may be touched.
type shadowState struct {
	tree    *rtree.Tree
	pending []mutation
	owner   *Snapshot // nil for a freshly built shadow
	churn   int       // mutations since tree's last repack
}

// InsertPOI appends one point to the data set and publishes the change,
// returning the new POI's id. It is a one-element ApplyPOIs batch: safe
// to call concurrently with planning, but each call pays a full snapshot
// publication — batch through ApplyPOIs when inserting many.
func (pl *Planner) InsertPOI(p geom.Point) int {
	ids, err := pl.ApplyPOIs([]geom.Point{p}, nil)
	if err != nil {
		// Unreachable: a pure insert batch cannot fail validation.
		panic(err)
	}
	return ids[0]
}

// DeletePOI removes the POI with the given id from the data set and
// publishes the change. It reports false — and changes nothing — when id
// is out of range, already deleted, or the last live POI (a planner's
// data set may never become empty; see ErrNoPOIs).
func (pl *Planner) DeletePOI(id int) bool {
	_, err := pl.ApplyPOIs(nil, []int{id})
	return err == nil
}

// compactMinTable is the point-table size below which id-space
// compaction never triggers: tiny data sets keep the identity mapping
// between external POI ids and table slots for their whole life, which
// the API's edge-semantics tests pin.
const compactMinTable = 256

// ApplyPOIs applies one batched mutation — inserts appended to the data
// set, deleteIDs tombstoned and removed from the index — and publishes
// the result as a single new snapshot, returning the inserted points'
// external ids. External ids are assigned sequentially and never
// reused, for the planner's whole life, even across internal id-space
// compactions (see below). The whole batch becomes visible atomically:
// no reader ever observes a prefix of it, and a snapshot's (tree,
// version) pair is always internally consistent.
//
// ApplyPOIs returns an error, and applies nothing, when a delete id is
// out of range, already deleted, repeated within the batch, or when the
// batch would leave the data set empty.
//
// Concurrency: safe to call concurrently with planning and with itself
// (writers serialize on an internal lock; readers are never blocked).
// The writer mutates a shadow copy of the index — the tree retired two
// publishes ago, after its last readers drain — and publishes it with
// one atomic pointer swap, then tells every cache registered via
// ShareCache which entries the batch could have invalidated.
//
// Memory: tombstoned slots normally live for the planner's life, but
// once tombstones outnumber live points (and the table is at least
// compactMinTable slots) the batch ends in an id-space compaction: a
// fresh slot table holding only live points is published in one epoch,
// an external-id→slot indirection keeps every previously returned id
// valid, and shared caches flush once via version self-invalidation.
// Point-table memory is therefore bounded by twice the live set; the
// indirection itself grows 4 bytes per id ever inserted — the
// irreducible cost of the ids-never-reused contract.
func (pl *Planner) ApplyPOIs(inserts []geom.Point, deleteIDs []int) ([]int, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()

	// Validate the whole batch against the canonical state before
	// touching anything.
	cur := pl.snap.Load()
	if cur.live+len(inserts)-len(deleteIDs) <= 0 {
		return nil, fmt.Errorf("core: mutation would empty the POI set: %w", ErrNoPOIs)
	}
	if len(deleteIDs) > 1 {
		seen := make(map[int]struct{}, len(deleteIDs))
		for _, id := range deleteIDs {
			if _, dup := seen[id]; dup {
				return nil, fmt.Errorf("core: duplicate delete of POI %d in one batch", id)
			}
			seen[id] = struct{}{}
		}
	}
	var delSlots []int
	if len(deleteIDs) > 0 {
		delSlots = make([]int, len(deleteIDs))
		for i, id := range deleteIDs {
			slot, err := pl.slotOfLocked(id)
			if err != nil {
				return nil, err
			}
			delSlots[i] = slot
		}
	}
	if len(inserts) == 0 && len(deleteIDs) == 0 {
		return nil, nil
	}
	baseExt := pl.nextExt

	sh := pl.shadowLocked(cur)

	// Wait for the shadow tree's last readers — pinned to the snapshot
	// retired by the previous publish — to drain. New readers acquire the
	// currently published snapshot, so the count is strictly decreasing.
	if sh.owner != nil {
		for spin := 0; sh.owner.refs.Load() != 0; spin++ {
			if spin < 100 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
		}
		sh.owner = nil
	}

	// Catch the shadow up: replay the previous publish's batch, which the
	// published tree has and this one has not.
	for _, m := range sh.pending {
		if m.insert {
			sh.tree.Insert(rtree.Item{P: m.p, ID: m.id})
		} else {
			sh.tree.Delete(rtree.Item{P: m.p, ID: m.id})
		}
	}
	sh.churn += len(sh.pending)
	sh.pending = nil

	// Apply the new batch to the shadow tree and the canonical tables.
	ops := make([]mutation, 0, len(inserts)+len(deleteIDs))
	locs := make([]geom.Point, 0, len(inserts)+len(deleteIDs))
	var ids []int
	if len(inserts) > 0 {
		ids = make([]int, len(inserts))
	}
	for i, p := range inserts {
		slot := len(pl.points)
		pl.points = append(pl.points, p)
		if pl.deleted != nil {
			// Appending may write backing-array capacity beyond a
			// published table's length — never inside it.
			pl.deleted = append(pl.deleted, false)
		}
		sh.tree.Insert(rtree.Item{P: p, ID: slot})
		ops = append(ops, mutation{insert: true, id: slot, p: p})
		locs = append(locs, p)
		ids[i] = pl.nextExt
		if pl.extSlot != nil {
			pl.extSlot = append(pl.extSlot, int32(slot))
			pl.ids = append(pl.ids, pl.nextExt)
		}
		pl.nextExt++
	}
	if len(delSlots) > 0 {
		// Copy-on-delete: tombstone bits are only ever set in a fresh
		// table, so publishes share the canonical table instead of
		// copying it — an insert-only publish costs O(batch), not
		// O(table).
		nd := make([]bool, len(pl.points))
		copy(nd, pl.deleted)
		pl.deleted = nd
	}
	for i, slot := range delSlots {
		pl.deleted[slot] = true
		pl.ndel++
		if pl.extSlot != nil {
			pl.extSlot[deleteIDs[i]] = -1
		}
		p := pl.points[slot]
		sh.tree.Delete(rtree.Item{P: p, ID: slot})
		ops = append(ops, mutation{id: slot, p: p})
		locs = append(locs, p)
	}
	sh.churn += len(ops)

	live := len(pl.points) - pl.ndel
	pl.version += uint64(len(ops))

	if pl.ndel > live && len(pl.points) >= compactMinTable {
		// Id-space compaction: remap every live point into a dense
		// slot table and publish it as this batch's snapshot. Shared
		// caches are not advanced — their entries flush once on the
		// version bump — and the shadow pair is discarded (the next
		// mutation rebuilds it from the compacted canonical state).
		pl.compactLocked(live)
	} else {
		if sh.churn > live {
			// Load balance: churn has touched more entries than the tree
			// holds, so occupancy has degraded toward the underflow floor and
			// MBRs have skewed. Re-pack with the STR bulk loader.
			sh.tree.Rebuild()
			sh.churn = 0
		}

		// Publish: version strictly after the structural change, the swap
		// after both.
		sh.tree.SetVersion(pl.version)
		var del []bool
		if pl.ndel > 0 {
			del = pl.deleted[:len(pl.deleted):len(pl.deleted)]
		}
		ns := &Snapshot{
			tree:    sh.tree,
			points:  pl.points[:len(pl.points):len(pl.points)],
			deleted: del,
			live:    live,
			version: pl.version,
			churn:   sh.churn,
		}
		pl.snap.Store(ns)

		// The retired tree becomes the next shadow, owing this batch.
		pl.shadow = &shadowState{tree: cur.tree, pending: ops, owner: cur, churn: cur.churn}

		// Tell shared caches exactly what changed, so entries the batch
		// cannot reach migrate to the new snapshot instead of dying.
		if len(pl.caches) > 0 {
			inv := nbrcache.Invalidation{
				OldTree: cur.tree, OldVersion: cur.version,
				NewTree: ns.tree, NewVersion: ns.version,
				Points: locs,
			}
			for _, c := range pl.caches {
				c.Advance(inv)
			}
		}
	}

	// Capture the applied batch for durability, in application order,
	// with the caller's external ids (see OnMutate).
	if pl.onMutate != nil {
		pl.onMutate(baseExt, inserts, deleteIDs)
	}
	return ids, nil
}

// slotOfLocked resolves an external POI id to its current table slot,
// with the delete-validation errors the API pins. Identity mapping
// until the first compaction. Caller holds pl.mu.
func (pl *Planner) slotOfLocked(id int) (int, error) {
	if pl.extSlot == nil {
		if id < 0 || id >= len(pl.points) {
			return 0, fmt.Errorf("core: delete of unknown POI %d", id)
		}
		if pl.deleted != nil && pl.deleted[id] {
			return 0, fmt.Errorf("core: delete of already-deleted POI %d", id)
		}
		return id, nil
	}
	if id < 0 || id >= len(pl.extSlot) {
		return 0, fmt.Errorf("core: delete of unknown POI %d", id)
	}
	slot := int(pl.extSlot[id])
	if slot < 0 || (pl.deleted != nil && pl.deleted[slot]) {
		return 0, fmt.Errorf("core: delete of already-deleted POI %d", id)
	}
	return slot, nil
}

// compactLocked rebuilds the canonical tables over live points only,
// materializing (on first use) and updating the external-id→slot
// indirection, and publishes the compacted snapshot. Caller holds
// pl.mu; pl.version already reflects the triggering batch.
func (pl *Planner) compactLocked(live int) {
	if pl.extSlot == nil {
		// First compaction: until now external ids equalled slots.
		pl.extSlot = make([]int32, pl.nextExt)
		pl.ids = make([]int, len(pl.points))
		for slot := range pl.points {
			pl.ids[slot] = slot
		}
		for ext := range pl.extSlot {
			pl.extSlot[ext] = -1
		}
	}
	np := make([]geom.Point, 0, live)
	nids := make([]int, 0, live)
	for slot, p := range pl.points {
		if pl.deleted[slot] {
			continue
		}
		ext := pl.ids[slot]
		pl.extSlot[ext] = int32(len(np))
		nids = append(nids, ext)
		np = append(np, p)
	}
	pl.points, pl.ids = np, nids
	pl.deleted, pl.ndel = nil, 0

	items := make([]rtree.Item, len(np))
	for slot, p := range np {
		items[slot] = rtree.Item{P: p, ID: slot}
	}
	t := rtree.Bulk(items, rtree.DefaultMaxEntries)
	t.SetVersion(pl.version)
	pl.snap.Store(&Snapshot{
		tree:    t,
		points:  np[:len(np):len(np)],
		live:    live,
		version: pl.version,
	})
	pl.shadow = nil
}

// shadowLocked returns the writer's shadow buffer, building it on the
// first mutation: until then the planner runs single-buffered and pays
// nothing. Caller holds pl.mu.
func (pl *Planner) shadowLocked(cur *Snapshot) *shadowState {
	if pl.shadow == nil {
		items := make([]rtree.Item, 0, cur.live)
		for id, p := range pl.points {
			if pl.deleted == nil || !pl.deleted[id] {
				items = append(items, rtree.Item{P: p, ID: id})
			}
		}
		t := rtree.Bulk(items, rtree.DefaultMaxEntries)
		t.SetVersion(pl.version)
		pl.shadow = &shadowState{tree: t}
	}
	return pl.shadow
}

// ShareCache registers a neighborhood cache for mutation notifications:
// every published batch calls c.Advance with the retired and fresh
// (tree, version) pairs and the mutated locations, letting entries the
// batch provably cannot affect survive the version transition. The
// public server registers its shared GNN cache here; without
// registration a cache still stays correct (entries die on version
// mismatch), just colder under churn.
func (pl *Planner) ShareCache(c *nbrcache.Cache) {
	if c == nil {
		return
	}
	pl.mu.Lock()
	pl.caches = append(pl.caches, c)
	pl.mu.Unlock()
}
