package core

import (
	"math"

	"mpn/internal/geom"
)

// This file implements GT-Verify exactly as the paper's Algorithm 4
// states it — the four-way tile partition of Theorem 2 — alongside the
// linear-time exact reformulation in verify.go (gtVerifyMax). The
// partition form is kept for fidelity and for the ablation/property tests
// that pin down the relationship between the two:
//
//   - both are sound (never accept an invalid tile), and
//   - the partition form is conservative: it may reject tiles that the
//     exact form (and the ground-truth IT-Verify enumeration) accepts,
//     because its case-4 fallback tests unions of tile groups with
//     Lemma 1 rather than the groups individually.
//
// The planner uses the exact form by default; PartitionVerify exists so
// the paper's algorithm is runnable and measurable as published.

// gtVerifyPartition is Algorithm 4 (GT-Verify). ts.users[i] must hold
// exactly the new tile {s}; other entries hold the existing regions.
func gtVerifyPartition(ts tileSets, i int, po, p geom.Point) bool {
	m := len(ts.users)
	s := ts.users[i][0]

	// Line 1: the plain Lemma 1 test on ⟨R1,…,{s}i,…,Rm⟩.
	if verifySets(ts.users, po, p) {
		return true
	}
	if m == 1 {
		// Single user: line 1 was exact (the group is just {s}).
		return false
	}

	// Partition each Rj by the new tile's dominant distances
	// do = ‖p°,s‖max and dp = ‖p,s‖min (line 3).
	do := s.MaxDist(po)
	dp := s.MinDist(p)

	type parts struct {
		dd, ud, du, uu []geom.Rect // G↓↓, G↑↓, G↓↑, G↑↑
	}
	part := make([]parts, m)
	for j := 0; j < m; j++ {
		if j == i {
			continue
		}
		for _, t := range ts.users[j] {
			tu := t.MaxDist(po) >= do // ↑ on the p° side
			tp := t.MinDist(p) >= dp  // ↑ on the p side
			switch {
			case !tu && !tp:
				part[j].dd = append(part[j].dd, t)
			case tu && !tp:
				part[j].ud = append(part[j].ud, t)
			case !tu && tp:
				part[j].du = append(part[j].du, t)
			default:
				part[j].uu = append(part[j].uu, t)
			}
		}
	}

	build := func(pick func(parts) []geom.Rect) [][]geom.Rect {
		sets := make([][]geom.Rect, m)
		for j := 0; j < m; j++ {
			if j == i {
				sets[j] = ts.users[i]
				continue
			}
			sets[j] = pick(part[j])
			if len(sets[j]) == 0 {
				// An empty selection means no tile of Rj participates in
				// this case; substitute the full G↓↓ floor (which may
				// itself be empty — then user j simply cannot realize
				// this dominant-user configuration, so give it the whole
				// region to stay conservative).
				sets[j] = part[j].dd
				if len(sets[j]) == 0 {
					sets[j] = ts.users[j]
				}
			}
		}
		return sets
	}

	// Line 4: the three covered dominant-user configurations.
	case1 := build(func(p parts) []geom.Rect { return p.dd })
	case2 := build(func(p parts) []geom.Rect { return append(append([]geom.Rect{}, p.dd...), p.ud...) })
	case3 := build(func(p parts) []geom.Rect { return append(append([]geom.Rect{}, p.dd...), p.du...) })
	if !verifySets(case1, po, p) || !verifySets(case2, po, p) || !verifySets(case3, po, p) {
		return false
	}

	// Lines 6–7: shortcut — an existing tile of Ri dominating s in both
	// distances means all remaining configurations were covered when that
	// tile was verified. Here ts.users[i] holds only {s}, so the caller
	// passes the existing region via part of ts? The planner variant
	// passes existing tiles separately; in this standalone form we look
	// for the shortcut among the OTHER users' verified tiles being
	// irrelevant, so we skip to the explicit case-4 test.

	// Lines 8–10: remaining configurations — both dominant users are
	// other users j,k ≠ i (possibly the same user, whose tile then lies
	// in G↑↑). Test them with Lemma 1 on the relevant unions. A case
	// whose required partition class is empty cannot be realized by any
	// group and is skipped as vacuous.
	for j := 0; j < m; j++ {
		if j == i {
			continue
		}
		for k := 0; k < m; k++ {
			if k == i {
				continue
			}
			sets := make([][]geom.Rect, m)
			vacuous := false
			for q := 0; q < m; q++ {
				switch {
				case q == i:
					sets[q] = ts.users[i]
				case q == j && q == k: // one user realizes both dominants
					sets[q] = part[q].uu
				case q == j: // dominant max user: large ‖p°,·‖max
					sets[q] = append(append([]geom.Rect{}, part[q].ud...), part[q].uu...)
				case q == k: // dominant min user: large ‖p,·‖min
					sets[q] = append(append([]geom.Rect{}, part[q].du...), part[q].uu...)
				default:
					sets[q] = ts.users[q]
				}
				if len(sets[q]) == 0 {
					// The dominant user q has no tile in the required
					// class: no group realizes this configuration.
					if q == j || q == k {
						vacuous = true
						break
					}
					sets[q] = ts.users[q]
				}
			}
			if vacuous {
				continue
			}
			if !verifySets(sets, po, p) {
				return false
			}
		}
	}
	return true
}

// verifySets applies the Lemma 1 test to per-user tile sets, treating
// each set as the union region: ‖p°,·‖⊤ over all tiles vs ‖p,·‖⊥ as the
// max over users of per-user minimum distances. Sound for every tile
// group drawn from the sets (see verify.go for the argument).
func verifySets(sets [][]geom.Rect, po, p geom.Point) bool {
	maxDo := 0.0
	floor := 0.0
	for _, tiles := range sets {
		if len(tiles) == 0 {
			continue
		}
		minDp := math.Inf(1)
		for _, t := range tiles {
			if v := t.MaxDist(po); v > maxDo {
				maxDo = v
			}
			if v := t.MinDist(p); v < minDp {
				minDp = v
			}
		}
		if minDp > floor {
			floor = minDp
		}
	}
	const eps = 1e-12
	return maxDo <= floor+eps
}

// PartitionVerify exposes the Algorithm 4 verifier for benchmarks and
// tests: it decides whether tile s may join user i's region with respect
// to candidate p, given the other users' current tile regions.
func PartitionVerify(regions []SafeRegion, i int, s geom.Rect, po, p geom.Point) bool {
	ts := tileSets{users: make([][]geom.Rect, len(regions))}
	for j := range regions {
		if j == i {
			ts.users[j] = []geom.Rect{s}
		} else {
			ts.users[j] = regions[j].Tiles
		}
	}
	return gtVerifyPartition(ts, i, po, p)
}

// ExactVerify exposes the linear-time exact group verification used by
// the planner, for tests and external comparisons.
func ExactVerify(regions []SafeRegion, i int, s geom.Rect, po, p geom.Point) bool {
	ts := tileSets{users: make([][]geom.Rect, len(regions))}
	for j := range regions {
		if j == i {
			ts.users[j] = []geom.Rect{s}
		} else {
			ts.users[j] = regions[j].Tiles
		}
	}
	return gtVerifyMax(ts, po, p)
}
