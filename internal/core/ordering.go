package core

import (
	"math"

	"mpn/internal/geom"
)

// tileOrdering enumerates candidate tiles for one user on the implicit
// grid of δ-sized squares centered at the user's location (Fig. 8). Tiles
// are produced layer by layer: layer k holds the tiles whose grid
// coordinates have Chebyshev norm k, visited anti-clockwise starting east.
//
// The ordering supports the paper's termination rule: when a whole layer
// is exhausted without any tile having been accepted into the safe region,
// the iterator reports exhaustion (any farther tile would be disconnected
// from the region).
//
// With directed=true only tiles whose subtended angle at the user deviates
// from heading by at most theta (plus the tile's own angular half-width)
// are produced, implementing the directed ordering driven by the user's
// recent travel direction [26].
type tileOrdering struct {
	center    geom.Point
	delta     float64
	layer     int
	pos       int // index within the current layer's ring
	ringLen   int
	accepted  bool // any tile accepted in the current layer?
	maxLayers int

	directed bool
	heading  float64
	theta    float64
}

// newTileOrdering starts the enumeration after the center tile (layer 0),
// which Algorithm 3 inserts unconditionally before growing.
func newTileOrdering(center geom.Point, delta float64, maxLayers int, directed bool, heading, theta float64) *tileOrdering {
	o := new(tileOrdering)
	o.reset(center, delta, maxLayers, directed, heading, theta)
	return o
}

// reset reinitializes the ordering in place, so workspace-resident
// orderings are reusable across computations without allocating.
func (o *tileOrdering) reset(center geom.Point, delta float64, maxLayers int, directed bool, heading, theta float64) {
	*o = tileOrdering{
		center:    center,
		delta:     delta,
		maxLayers: maxLayers,
		directed:  directed,
		heading:   heading,
		theta:     theta,
		layer:     1,
		// accepted is false: it tracks acceptances within the layer being
		// enumerated (layer 1). The layer-0 seed is inserted
		// unconditionally by Tile-MSR, so layer 1 is always explored.
	}
	o.ringLen = ringLength(1)
}

// ringLength returns the number of grid cells at Chebyshev distance k.
func ringLength(k int) int {
	if k == 0 {
		return 1
	}
	return 8 * k
}

// ringCell maps (layer k, position i) to grid coordinates, walking the
// ring anti-clockwise from (k, 0): up the east edge, along the north,
// down the west, along the south.
func ringCell(k, i int) (gx, gy int) {
	if k == 0 {
		return 0, 0
	}
	side := 2 * k
	switch {
	case i < side: // east edge, going north from (k, 0) then wrapping
		return k, cellOffset(i, k)
	case i < 2*side: // north edge, going west
		j := i - side
		return k - 1 - j, k
	case i < 3*side: // west edge, going south
		j := i - 2*side
		return -k, k - 1 - j
	default: // south edge, going east
		j := i - 3*side
		return -k + 1 + j, -k
	}
}

// cellOffset spreads the east edge symmetrically: 0, 1, …, k, then −1 …
// −k+? — we simply go 0,1,…,k−1,k? To keep the walk contiguous
// anti-clockwise we start at (k,0) and go up to (k,k), so offsets are
// 0…k, then the remainder of the east edge (negative y) is visited at the
// end of the south edge wrap. For simplicity the east edge covers
// y ∈ [−k+1 … k] shifted so the walk starts at y=0: 0,1,…,k,−k+1,…,−1.
func cellOffset(i, k int) int {
	if i <= k {
		return i
	}
	return i - 2*k // i ∈ (k, 2k) → y ∈ [−k+1, −1]
}

// markAccepted records that a tile of the current layer entered the safe
// region, allowing the enumeration to continue into the next layer.
func (o *tileOrdering) markAccepted() { o.accepted = true }

// next returns the next candidate tile. ok=false means the ordering is
// exhausted (Next-Tile returned ∅ in Algorithm 3).
func (o *tileOrdering) next() (geom.Rect, bool) {
	for {
		if o.pos >= o.ringLen {
			// Layer finished: stop if nothing was accepted in it.
			if !o.accepted || o.layer >= o.maxLayers {
				return geom.Rect{}, false
			}
			o.layer++
			o.pos = 0
			o.ringLen = ringLength(o.layer)
			o.accepted = false
		}
		gx, gy := ringCell(o.layer, o.pos)
		o.pos++
		tile := geom.RectAround(
			geom.Pt(o.center.X+float64(gx)*o.delta, o.center.Y+float64(gy)*o.delta),
			o.delta,
		)
		if o.directed && !o.tileInCone(tile) {
			continue
		}
		return tile, true
	}
}

// tileInCone reports whether the tile's subtended angle at the user
// deviates from the heading by at most theta. The test uses the tile
// center's bearing with a grace of the tile's angular half-width, so tiles
// straddling the cone boundary are kept.
func (o *tileOrdering) tileInCone(tile geom.Rect) bool {
	c := tile.Center()
	v := c.Sub(o.center)
	dist := v.Norm()
	if dist == 0 {
		return true
	}
	halfWidth := math.Atan2(o.delta*math.Sqrt2/2, dist)
	return geom.AngleDiff(v.Angle(), o.heading) <= o.theta+halfWidth
}
