package core

import (
	"errors"

	"mpn/internal/geom"
	"mpn/internal/nbrcache"
)

// ErrNoNetBackend is returned by Plan for a KindNetRange request on a
// planner with no registered network backend.
var ErrNoNetBackend = errors.New("core: no network backend registered")

// PlanRequest describes one safe-region computation to Plan: the region
// kind (which selects the planning backend), the group's locations and
// optional headings, the optional shared neighborhood cache, and the
// optional retained incremental state.
//
// PlanRequest replaces the {Tile,Circle}×{Inc}×{Cached}×{Into} method
// matrix that core grew one entry point at a time: every combination is
// one field away, and a new backend (the road-network planner) registers
// once instead of doubling the matrix again.
type PlanRequest struct {
	// Kind selects the safe-region representation — and with it the
	// planning backend: KindTiles and KindCircle run the Euclidean
	// planners over the POI R-tree; KindNetRange dispatches to the
	// registered network backend (see Planner.RegisterNetBackend).
	Kind RegionKind

	// Users holds the group members' current locations.
	Users []geom.Point

	// Dirs optionally holds per-member travel headings for the directed
	// tile ordering. Ignored unless Kind is KindTiles with
	// Options.Directed; may be nil or mismatched in length (both fall
	// back to undirected defaults, as the matrix entry points did).
	Dirs []Direction

	// Cache optionally routes top-k retrievals through the shared
	// neighborhood cache. Plans are byte-identical with or without it.
	Cache *nbrcache.Cache

	// State optionally carries the group's retained plan for incremental
	// maintenance: non-nil selects the incremental path (kept/partial
	// outcomes possible), nil recomputes from scratch. The state is
	// mutated (recorded or invalidated) exactly as the *Inc* entry points
	// did.
	State *PlanState
}

// Plan is the single planning entry point: every safe-region computation
// — any region kind, cached or not, incremental or from scratch — is one
// call with the parameters carried in req. The deprecated TileMSR*/
// CircleMSR* methods are thin wrappers over it.
//
// The returned IncOutcome is meaningful when req.State is non-nil;
// from-scratch computations always report IncFull. Plans are exported by
// copy (never aliasing ws) except on IncKept, where regions alias the
// retained previously-exported plan.
func (pl *Planner) Plan(ws *Workspace, req PlanRequest) (Plan, IncOutcome, error) {
	switch req.Kind {
	case KindCircle:
		if req.State != nil {
			return pl.circleMSRInc(ws, req.Cache, req.State, req.Users)
		}
		p, err := pl.circleMSR(ws, req.Cache, req.Users)
		return p, IncFull, err
	case KindNetRange:
		b := pl.netBackend
		if b == nil {
			return Plan{}, IncFull, ErrNoNetBackend
		}
		return b.PlanNet(ws, req)
	default: // KindTiles
		if req.State != nil {
			return pl.tileMSRInc(ws, req.Cache, req.State, req.Users, req.Dirs)
		}
		p, err := pl.tileMSR(ws, req.Cache, req.Users, req.Dirs)
		return p, IncFull, err
	}
}

// NetBackend is a road-network planning backend: an implementation that
// answers KindNetRange requests with network meeting points and
// KindNetRange safe regions, honoring the same contract as the Euclidean
// paths (exported plans, PlanState protocol, IncOutcome semantics,
// byte-identical cached retrieval). Implementations must be safe for
// concurrent use with distinct workspaces and states.
type NetBackend interface {
	PlanNet(ws *Workspace, req PlanRequest) (Plan, IncOutcome, error)
}

// RegisterNetBackend installs the network backend Plan dispatches
// KindNetRange requests to. Call once, before planning begins; a nil
// backend unregisters.
func (pl *Planner) RegisterNetBackend(b NetBackend) { pl.netBackend = b }

// NetBackend returns the registered network backend (nil if none).
func (pl *Planner) NetBackend() NetBackend { return pl.netBackend }
