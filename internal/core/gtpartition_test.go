package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpn/internal/geom"
	"mpn/internal/gnn"
)

// randomTileRegions builds a random configuration for the verifier
// comparisons.
func randomTileRegions(rng *rand.Rand, m int) []SafeRegion {
	regions := make([]SafeRegion, m)
	for i := range regions {
		cnt := 1 + rng.Intn(4)
		tiles := make([]geom.Rect, 0, cnt)
		for k := 0; k < cnt; k++ {
			tiles = append(tiles, geom.RectAround(
				geom.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.15+0.01))
		}
		regions[i] = TileRegion(tiles...)
	}
	return regions
}

// The partition verifier must be SOUND: whenever it accepts, the exact
// enumeration (via gtVerifyMax ≡ itVerifyMax) must also accept.
func TestPartitionVerifySound(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	accepts := 0
	for trial := 0; trial < 4000; trial++ {
		m := 1 + rng.Intn(3)
		regions := randomTileRegions(rng, m)
		i := rng.Intn(m)
		s := geom.RectAround(geom.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.15+0.01)
		po := geom.Pt(rng.Float64(), rng.Float64())
		p := geom.Pt(rng.Float64(), rng.Float64())
		if PartitionVerify(regions, i, s, po, p) {
			accepts++
			if !ExactVerify(regions, i, s, po, p) {
				t.Fatalf("partition verifier accepted an invalid tile (trial %d)", trial)
			}
		}
	}
	if accepts == 0 {
		t.Fatal("partition verifier never accepted — vacuous test")
	}
}

// When the plain Lemma 1 union test passes (line 1), the two verifiers
// agree by construction; measure how often the partition refinement
// rescues tiles the union test rejected, to confirm the refinement does
// something.
func TestPartitionRefinementRescues(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	rescued, refinedTrials := 0, 0
	for trial := 0; trial < 5000; trial++ {
		m := 2 + rng.Intn(2)
		regions := randomTileRegions(rng, m)
		i := rng.Intn(m)
		s := geom.RectAround(geom.Pt(rng.Float64(), rng.Float64()), rng.Float64()*0.1+0.01)
		po := geom.Pt(rng.Float64(), rng.Float64())
		p := geom.Pt(rng.Float64(), rng.Float64())

		sets := make([][]geom.Rect, m)
		for j := range regions {
			if j == i {
				sets[j] = []geom.Rect{s}
			} else {
				sets[j] = regions[j].Tiles
			}
		}
		if verifySets(sets, po, p) {
			continue // line 1 already accepts; not interesting
		}
		refinedTrials++
		if PartitionVerify(regions, i, s, po, p) {
			rescued++
		}
	}
	if refinedTrials == 0 {
		t.Fatal("no refinement trials")
	}
	if rescued == 0 {
		t.Log("partition refinement never rescued a tile in this sample (allowed but unusual)")
	}
}

// testing/quick property: gtVerifyMax decisions are invariant under tile
// order within each user's set.
func TestExactVerifyOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(3)
		regions := randomTileRegions(r, m)
		i := r.Intn(m)
		s := geom.RectAround(geom.Pt(r.Float64(), r.Float64()), r.Float64()*0.1+0.01)
		po := geom.Pt(r.Float64(), r.Float64())
		p := geom.Pt(r.Float64(), r.Float64())
		before := ExactVerify(regions, i, s, po, p)
		// Shuffle every region's tiles.
		for j := range regions {
			tiles := regions[j].Tiles
			rng.Shuffle(len(tiles), func(a, b int) { tiles[a], tiles[b] = tiles[b], tiles[a] })
		}
		return ExactVerify(regions, i, s, po, p) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// testing/quick property: growing another user's region can only make
// verification harder (monotonicity): if the tile verifies against a
// superset region group, it verifies against the subset.
func TestExactVerifyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(2)
		regions := randomTileRegions(r, m)
		i := r.Intn(m)
		s := geom.RectAround(geom.Pt(r.Float64(), r.Float64()), r.Float64()*0.1+0.01)
		po := geom.Pt(r.Float64(), r.Float64())
		p := geom.Pt(r.Float64(), r.Float64())

		if !ExactVerify(regions, i, s, po, p) {
			return true // nothing to check
		}
		// Remove one tile from some other user's region (keeping ≥1).
		j := (i + 1) % m
		if len(regions[j].Tiles) > 1 {
			regions[j].Tiles = regions[j].Tiles[:len(regions[j].Tiles)-1]
		}
		return ExactVerify(regions, i, s, po, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// testing/quick property on the planner: Circle-MSR radii are never
// negative and the best POI reported matches the brute-force GNN.
func TestCircleMSRQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, DefaultOptions())
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		users := randomPoints(2+r.Intn(3), r)
		plan, err := pl.CircleMSR(users)
		if err != nil {
			return false
		}
		if plan.Regions[0].Circle.R < 0 {
			return false
		}
		want := gnn.BruteTopK(pts, users, gnn.Max, 1)[0]
		return plan.Best.Dist == want.Dist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
