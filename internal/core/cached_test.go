package core

import (
	"math/rand"
	"reflect"
	"testing"

	"mpn/internal/geom"
	"mpn/internal/nbrcache"
)

// TestCachedPlanningDifferential is the correctness fence of the shared
// neighborhood cache at the planner level: across aggregates × directed
// × buffered × region shape, every cached plan must be byte-identical
// to the uncached plan of the same snapshot — through hits, misses,
// certification rejections, and stale entries after POI mutation. Two
// co-located groups interleave so hits genuinely cross groups, and a
// POI is inserted mid-stream so entries go stale.
func TestCachedPlanningDifferential(t *testing.T) {
	for _, cfg := range incConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			pts := randomPoints(400, rng)
			opts := tileOpts(cfg.mod)
			opts.TileLimit = 6
			pl := mustPlanner(t, pts, opts)
			cache := nbrcache.New(nbrcache.Config{})

			// Two groups sharing a hotspot: their centroids fall in the
			// same cache tile, so group B's lookups can be served by
			// entries group A populated.
			groups := [][]geom.Point{
				{geom.Pt(0.5, 0.5), geom.Pt(0.504, 0.498), geom.Pt(0.498, 0.503)},
				{geom.Pt(0.502, 0.501), geom.Pt(0.497, 0.499), geom.Pt(0.501, 0.496)},
			}
			dirs := make([]Direction, 3)
			wsC := NewWorkspace()
			wsU := NewWorkspace()

			for step := 0; step < 60; step++ {
				users := groups[step%2]
				// Drift inside the hotspot; occasionally teleport both
				// groups to a fresh tile (misses) and back.
				if step%17 == 16 {
					dx := 0.2 * rng.Float64()
					for _, g := range groups {
						for i := range g {
							g[i] = geom.Pt(g[i].X+dx, g[i].Y)
						}
					}
				} else {
					for i := range users {
						users[i] = geom.Pt(users[i].X+2e-4*(rng.Float64()-0.5), users[i].Y+2e-4*(rng.Float64()-0.5))
					}
				}
				for i := range dirs {
					dirs[i] = Direction{Angle: rng.Float64() * 6}
				}
				if step == 30 {
					// Mutate the POI set: every cached entry is now stale.
					pl.InsertPOI(geom.Pt(0.501, 0.5005))
				}

				var planC, planU Plan
				var errC, errU error
				if cfg.circle {
					planC, errC = pl.CircleMSRCachedInto(wsC, cache, users)
					planU, errU = pl.CircleMSRInto(wsU, users)
				} else {
					planC, errC = pl.TileMSRCachedInto(wsC, cache, users, dirs)
					planU, errU = pl.TileMSRInto(wsU, users, dirs)
				}
				if errC != nil || errU != nil {
					t.Fatalf("step %d: cached err %v, uncached err %v", step, errC, errU)
				}
				if !reflect.DeepEqual(planC, planU) {
					t.Fatalf("step %d: cached plan differs from uncached\ncached:   %+v\nuncached: %+v",
						step, planC, planU)
				}
			}
			st := cache.Stats()
			if st.Hits == 0 || st.Misses == 0 || st.Stale == 0 {
				t.Fatalf("%s: stream did not cover hit/miss/stale: %+v", cfg.name, st)
			}
		})
	}
}

// TestCachedIncrementalDifferential runs the incremental planners with
// and without the cache over one report stream: outcomes and plans must
// be byte-identical, including after a mid-stream POI insertion
// invalidates both the cache entries and the retained result set.
func TestCachedIncrementalDifferential(t *testing.T) {
	for _, cfg := range incConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(29))
			pts := randomPoints(400, rng)
			opts := tileOpts(cfg.mod)
			opts.TileLimit = 8
			pl := mustPlanner(t, pts, opts)
			cache := nbrcache.New(nbrcache.Config{})

			users := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(0.52, 0.485), geom.Pt(0.49, 0.51)}
			dirs := make([]Direction, len(users))
			var stC, stU PlanState
			wsC := NewWorkspace()
			wsU := NewWorkspace()
			counts := map[IncOutcome]int{}

			for step := 0; step < 72; step++ {
				incStep(step, users, rng)
				for i := range dirs {
					dirs[i] = Direction{Angle: rng.Float64() * 6}
				}
				if step == 40 {
					pl.InsertPOI(geom.Pt(users[0].X+1e-3, users[0].Y-1e-3))
				}
				var planC, planU Plan
				var outC, outU IncOutcome
				var errC, errU error
				if cfg.circle {
					planC, outC, errC = pl.CircleMSRIncCachedInto(wsC, cache, &stC, users)
					planU, outU, errU = pl.CircleMSRIncInto(wsU, &stU, users)
				} else {
					planC, outC, errC = pl.TileMSRIncCachedInto(wsC, cache, &stC, users, dirs)
					planU, outU, errU = pl.TileMSRIncInto(wsU, &stU, users, dirs)
				}
				if errC != nil || errU != nil {
					t.Fatalf("step %d: cached err %v, uncached err %v", step, errC, errU)
				}
				if outC != outU {
					t.Fatalf("step %d: outcome diverged cached %v vs uncached %v", step, outC, outU)
				}
				counts[outC]++
				if planC.Best != planU.Best || !reflect.DeepEqual(planC.Regions, planU.Regions) {
					t.Fatalf("step %d (%v): cached incremental plan differs from uncached", step, outC)
				}
			}
			if counts[IncKept] == 0 || counts[IncFull] == 0 {
				t.Fatalf("stream too uniform: %v", counts)
			}
		})
	}
}

// TestInsertPOIConsistency: after InsertPOI the planner must behave as
// if it had been constructed over the extended point set — same plans,
// sound regions, and the new POI reachable as an optimum.
func TestInsertPOIConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randomPoints(300, rng)
	pl := mustPlanner(t, pts, tileOpts(nil))
	users := []geom.Point{geom.Pt(0.4, 0.4), geom.Pt(0.42, 0.39)}

	before, err := pl.TileMSR(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a POI right between the users: it must become the optimum.
	id := pl.InsertPOI(geom.Pt(0.41, 0.395))
	if id != 300 || pl.NumPOIs() != 301 {
		t.Fatalf("id=%d NumPOIs=%d", id, pl.NumPOIs())
	}
	after, err := pl.TileMSR(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.Best.Item.ID != id {
		t.Fatalf("inserted POI not optimal: best %+v (before %+v)", after.Best, before.Best)
	}
	// Rebuild a fresh planner over the extended set: plans must match.
	fresh := mustPlanner(t, pl.Points(), pl.Options())
	ref, err := fresh.TileMSR(users, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Compare plan content, not Stats: a fresh STR bulk load arranges the
	// tree differently than an incremental insert, so candidate visit
	// order (and with it the early-exit verification counters) may
	// differ even though every decision and region is the same.
	if after.Best != ref.Best || !reflect.DeepEqual(after.Regions, ref.Regions) {
		t.Fatal("post-insert plan differs from a fresh planner over the extended set")
	}
	assertPlanSound(t, pl.Points(), after, pl.Options().Aggregate, rng, 20)
}
