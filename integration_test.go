package mpn

// Cross-module integration tests: the public API, the wire protocol, the
// simulator, and the cost model working against the same workloads.

import (
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"mpn/internal/core"
	"mpn/internal/costmodel"
	"mpn/internal/geom"
	"mpn/internal/gnn"
	"mpn/internal/mobility"
	"mpn/internal/proto"
	"mpn/internal/sim"
	"mpn/internal/workload"
)

// TestEndToEndMovingGroup replays a mobility-model trajectory group
// against the public API and verifies the invariant users actually rely
// on: between updates, the reported meeting point is optimal for the
// current locations whenever everyone is inside their regions.
func TestEndToEndMovingGroup(t *testing.T) {
	poiCfg := workload.DefaultPOIConfig()
	poiCfg.N = 1500
	pois, err := workload.GeneratePOIs(poiCfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := workload.GenerateGeoLifeSet(workload.SetConfig{
		NumTrajectories: 3, Steps: 300, Speed: 0.001, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	trajs := set.Trajs

	server, err := NewServer(pois, WithMethod(TileDirected), WithTileLimit(8), WithBuffer(30))
	if err != nil {
		t.Fatal(err)
	}
	locsAt := func(tm int) []Point {
		out := make([]Point, len(trajs))
		for i, tr := range trajs {
			out[i] = tr[tm]
		}
		return out
	}
	dirsAt := func(tm int) []Direction {
		out := make([]Direction, len(trajs))
		for i, tr := range trajs {
			out[i] = Direction{
				Angle: mobility.Heading(tr, tm, 20),
				Theta: mobility.DeviationBound(tr, tm, 20, math.Pi/6),
			}
		}
		return out
	}

	group, err := server.Register(locsAt(0), dirsAt(0))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for tm := 1; tm < 300; tm++ {
		locs := locsAt(tm)
		escaped := false
		for i, l := range locs {
			if group.NeedsUpdate(i, l) {
				escaped = true
				break
			}
		}
		if escaped {
			if err := group.Update(locs, dirsAt(tm)); err != nil {
				t.Fatal(err)
			}
			continue
		}
		// Inside all regions: the reported point must be optimal now.
		if tm%17 == 0 {
			mp := group.MeetingPoint()
			mpDist := gnn.Max.PointDist(mp, locs)
			for _, p := range pois {
				if gnn.Max.PointDist(p, locs) < mpDist-1e-9 {
					t.Fatalf("t=%d: POI %v beats reported meeting point %v", tm, p, mp)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("invariant was never checked — users escaped every tick")
	}
}

// TestProtocolAgainstPublicPlanner runs the wire protocol with the public
// server's planner and checks the region a client decodes matches what
// the planner produced.
func TestProtocolAgainstPublicPlanner(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pois := make([]Point, 600)
	for i := range pois {
		pois[i] = Pt(rng.Float64(), rng.Float64())
	}
	server, err := NewServer(pois, WithMethod(Tile), WithTileLimit(6))
	if err != nil {
		t.Fatal(err)
	}
	plan := func(users []geom.Point) (geom.Point, []core.SafeRegion, error) {
		mp, regions, _, err := server.Plan(users, nil)
		return mp, regions, err
	}
	coord := proto.NewCoordinator(plan, nil)

	serverSide, clientSide := net.Pipe()
	go func() { _ = coord.ServeConn(serverSide) }()
	defer clientSide.Close()

	loc := Pt(0.4, 0.4)
	notified := make(chan core.SafeRegion, 1)
	client, err := proto.NewClient(clientSide, 1, 0,
		func() geom.Point { return loc },
		func(_ geom.Point, r core.SafeRegion) { notified <- r },
	)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = client.Run() }()
	if err := client.Register(1); err != nil { // single-user group
		t.Fatal(err)
	}
	select {
	case r := <-notified:
		if !r.Contains(loc) {
			t.Fatal("decoded region misses the client location")
		}
		// Must agree with a direct plan for the same location.
		_, direct, _, err := server.Plan([]Point{loc}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumTiles() != direct[0].NumTiles() {
			t.Fatalf("wire region has %d tiles, direct plan %d",
				r.NumTiles(), direct[0].NumTiles())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no notification")
	}
}

// TestCostModelRanksLikeSimulator checks the future-work cost model agrees
// with the simulator on method ordering for the same POI set.
func TestCostModelRanksLikeSimulator(t *testing.T) {
	poiCfg := workload.DefaultPOIConfig()
	poiCfg.N = 1500
	pois, err := workload.GeneratePOIs(poiCfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := workload.GenerateGeoLifeSet(workload.SetConfig{
		NumTrajectories: 3, Steps: 600, Speed: 0.0008, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}

	freq := map[sim.Method]float64{}
	pred := map[sim.Method]float64{}
	for _, m := range []sim.Method{sim.MethodCircle, sim.MethodTile} {
		cfg := sim.MethodConfig(m, gnn.Max, 0)
		cfg.Core.TileLimit = 8
		met, err := sim.Run(pois, set.Trajs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		freq[m] = met.UpdateFrequency()

		opts := core.DefaultOptions()
		opts.TileLimit = 8
		est, err := costmodel.Predict(pois, costmodel.Config{
			Method: m, Core: opts, GroupSize: 3, Speed: 0.0008, Samples: 25, Seed: 41,
		})
		if err != nil {
			t.Fatal(err)
		}
		pred[m] = est.UpdateFreq
	}
	if (freq[sim.MethodTile] < freq[sim.MethodCircle]) != (pred[sim.MethodTile] < pred[sim.MethodCircle]) {
		t.Fatalf("model ordering disagrees with simulator: sim %v vs model %v", freq, pred)
	}
}

// TestRegionWireCompatibility checks mpn.EncodeRegion and the proto-layer
// codec interoperate byte-for-byte.
func TestRegionWireCompatibility(t *testing.T) {
	r := core.TileRegion(
		geom.RectAround(geom.Pt(0.4, 0.4), 0.02),
		geom.RectAround(geom.Pt(0.42, 0.4), 0.02),
	)
	enc := EncodeRegion(r)
	viaProto, err := proto.DecodeRegion(enc)
	if err != nil {
		t.Fatal(err)
	}
	viaPublic, err := DecodeRegion(enc)
	if err != nil {
		t.Fatal(err)
	}
	if viaProto.NumTiles() != viaPublic.NumTiles() {
		t.Fatal("codec layers disagree")
	}
	c := CircleRegionForTest()
	if dec, err := proto.DecodeRegion(EncodeRegion(c)); err != nil || dec.Circle != c.Circle {
		t.Fatalf("circle interop: %v %v", dec, err)
	}
}

// CircleRegionForTest builds a circle region without exporting internals
// in the public API surface.
func CircleRegionForTest() SafeRegion {
	return core.CircleRegion(geom.Pt(0.3, 0.7), 0.05)
}
