// Roadtrip: the road-network extension of Section 8. Three drivers move
// on a synthetic city road network; the meeting point minimizes the
// maximum SHORTEST-PATH distance (not Euclidean), and each driver's safe
// region is a range-search region over road segments — the network analog
// of the rmax circle, valid by the same Theorem 1 argument because the
// network distance is a metric.
//
// Run with: go run ./examples/roadtrip
package main

import (
	"fmt"
	"log"

	"mpn/internal/netmpn"
	"mpn/internal/roadnet"
)

func main() {
	log.SetFlags(0)

	net, err := roadnet.Generate(roadnet.Config{
		Rows: 25, Cols: 25, Jitter: 0.25, DropFrac: 0.1, Arterials: 12, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Every 6th junction hosts a candidate meeting venue.
	var venues []int
	for v := 0; v < net.NumNodes(); v += 6 {
		venues = append(venues, v)
	}
	server, err := netmpn.NewServer(net, venues)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d junctions, %d segments, %d venues\n",
		net.NumNodes(), net.NumEdges(), len(venues))

	// One-shot plan for three drivers at fixed junctions.
	drivers := []netmpn.Position{
		netmpn.NodePos(3),
		netmpn.NodePos(net.NumNodes() / 2),
		netmpn.NodePos(net.NumNodes() - 4),
	}
	res, regions, err := server.Plan(drivers, netmpn.Max)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("meet at junction %d (worst drive: %.3f network units)\n", res.Node, res.Dist)
	for i, r := range regions {
		fmt.Printf("driver %d: range region of radius %.4f covering %d segments (%d wire values)\n",
			i+1, r.Radius, r.NumEdges(), r.EncodedValues())
	}

	// Continuous monitoring: drivers follow shortest paths to random
	// destinations; the simulator counts how often anyone escapes.
	met, err := netmpn.Simulate(server, 3, 2000, 0.0015, netmpn.Max, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n2,000 timestamps of driving: %d updates (%.1f per 1k)\n",
		met.Updates, met.UpdateFrequency())
	fmt.Printf("per-tick polling would have cost 3×2000 = 6000 reports; safe regions sent %d region payloads totalling %d values\n",
		met.Updates*3, met.RegionValues)
}
