// Fleetmeet: the Sum-MPN scenario of Section 6. A carpool group wants the
// rendezvous parking lot minimizing the TOTAL distance driven (fuel), and
// agrees to share the total cost evenly — members below the average
// contribute the difference to those above it. The sum-optimal meeting
// point plus independent safe regions keeps both the recommendation and
// the cost split current while everyone drives.
//
// Run with: go run ./examples/fleetmeet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpn"
)

const costPerUnit = 42.0 // fuel money per map unit driven

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(7))

	// 1,000 candidate parking lots.
	lots := make([]mpn.Point, 1000)
	for i := range lots {
		lots[i] = mpn.Pt(rng.Float64(), rng.Float64())
	}

	server, err := mpn.NewServer(lots,
		mpn.WithAggregate(mpn.MinimizeSum),
		mpn.WithMethod(mpn.Tile),
		mpn.WithTileLimit(8),
		mpn.WithBuffer(40),
	)
	if err != nil {
		log.Fatal(err)
	}

	drivers := []mpn.Point{
		mpn.Pt(0.12, 0.40), mpn.Pt(0.45, 0.85), mpn.Pt(0.80, 0.30), mpn.Pt(0.55, 0.15),
	}
	group, err := server.Register(drivers, nil)
	if err != nil {
		log.Fatal(err)
	}

	printSplit := func(tag string) {
		lot := group.MeetingPoint()
		total := 0.0
		dists := make([]float64, len(drivers))
		for i, d := range drivers {
			dists[i] = d.Dist(lot)
			total += dists[i]
		}
		avg := total / float64(len(drivers))
		fmt.Printf("%s: lot %v, total fuel cost %.2f\n", tag, lot, total*costPerUnit)
		for i, d := range dists {
			transfer := (avg - d) * costPerUnit
			switch {
			case transfer > 0.005:
				fmt.Printf("  driver %d drives %.3f, pays %.2f into the pool\n", i+1, d, transfer)
			case transfer < -0.005:
				fmt.Printf("  driver %d drives %.3f, receives %.2f from the pool\n", i+1, d, -transfer)
			default:
				fmt.Printf("  driver %d drives %.3f, breaks even\n", i+1, d)
			}
		}
	}
	printSplit("initial plan")

	// Everyone drives toward the lot; driver 3 takes a detour east first.
	contacts := 0
	for t := 1; t <= 250; t++ {
		lot := group.MeetingPoint()
		for i := range drivers {
			target := lot
			if i == 2 && t < 80 {
				target = mpn.Pt(0.95, 0.50) // detour
			}
			dir := target.Sub(drivers[i])
			if n := dir.Norm(); n > 1e-9 {
				drivers[i] = drivers[i].Add(dir.Scale(0.0025 / n))
			}
		}
		for i := range drivers {
			if group.NeedsUpdate(i, drivers[i]) {
				if err := group.Update(drivers, nil); err != nil {
					log.Fatal(err)
				}
				contacts++
				break
			}
		}
	}
	fmt.Printf("\nafter 250 timestamps and %d server contacts:\n\n", contacts)
	printSplit("final plan")
}
