// Quickstart: index a POI set, register a moving group, and watch the
// safe regions suppress server round-trips.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpn"
)

func main() {
	log.SetFlags(0)

	// A synthetic city: 5,000 POIs in the unit square.
	rng := rand.New(rand.NewSource(1))
	pois := make([]mpn.Point, 5000)
	for i := range pois {
		pois[i] = mpn.Pt(rng.Float64(), rng.Float64())
	}

	// The default server uses the paper's best method: directed tiles
	// with buffering.
	server, err := mpn.NewServer(pois)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server ready with %d POIs\n", server.NumPOIs())

	// Three friends somewhere downtown.
	users := []mpn.Point{
		mpn.Pt(0.30, 0.30),
		mpn.Pt(0.35, 0.28),
		mpn.Pt(0.32, 0.36),
	}
	group, err := server.Register(users, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal meeting point: %v\n", group.MeetingPoint())
	for i := range users {
		fmt.Printf("user %d safe region: %v\n", i, group.Region(i))
	}

	// Walk the users north-east in small steps. Only escapes trigger
	// server contact — count how much communication the regions save.
	const steps = 400
	contacts := 0
	for t := 1; t <= steps; t++ {
		for i := range users {
			users[i] = users[i].Add(mpn.Pt(0.0005*rng.Float64(), 0.0005*rng.Float64()))
		}
		escaped := -1
		for i, u := range users {
			if group.NeedsUpdate(i, u) {
				escaped = i
				break
			}
		}
		if escaped >= 0 {
			contacts++
			if err := group.Update(users, nil); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\nafter %d timestamps: %d server contacts (%.1f%% suppressed)\n",
		steps, contacts, 100*(1-float64(contacts)/steps))
	fmt.Printf("final meeting point:  %v\n", group.MeetingPoint())
	st := group.Stats()
	fmt.Printf("server work: %d GNN calls, %d index accesses, %d tiles accepted\n",
		st.GNNCalls, st.IndexAccesses, st.TilesAccepted)
}
