// Tourality: the location-based-game scenario from the paper's
// introduction. A team of distributed players races toward geographically
// defined spots; MPN continuously points the team at the spot reachable
// fastest (minimizing the slowest member's travel) while the directed tile
// regions — grown along each player's heading — keep notification traffic
// low even at running speed.
//
// Run with: go run ./examples/tourality
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mpn"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(3))

	// 200 game spots scattered over the map.
	spots := make([]mpn.Point, 200)
	for i := range spots {
		spots[i] = mpn.Pt(rng.Float64(), rng.Float64())
	}

	server, err := mpn.NewServer(spots,
		mpn.WithMethod(mpn.TileDirected),
		mpn.WithTileLimit(12),
		mpn.WithBuffer(30),
	)
	if err != nil {
		log.Fatal(err)
	}

	// A team of four players with individual headings.
	players := []mpn.Point{
		mpn.Pt(0.10, 0.10), mpn.Pt(0.15, 0.90), mpn.Pt(0.90, 0.15), mpn.Pt(0.85, 0.85),
	}
	headings := make([]float64, len(players))
	for i := range headings {
		headings[i] = rng.Float64() * 2 * math.Pi
	}
	dirsOf := func() []mpn.Direction {
		dirs := make([]mpn.Direction, len(players))
		for i, h := range headings {
			dirs[i] = mpn.Direction{Angle: h, Theta: math.Pi / 3}
		}
		return dirs
	}

	group, err := server.Register(players, dirsOf())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first rally spot: %v\n", group.MeetingPoint())

	// Players run: mostly straight, occasional course corrections, always
	// drifting toward the current rally spot.
	const steps = 500
	const speed = 0.0018 // running pace
	contacts, spotChanges := 0, 0
	for t := 1; t <= steps; t++ {
		target := group.MeetingPoint()
		for i := range players {
			toTarget := target.Sub(players[i]).Angle()
			// Blend heading toward the target with some wobble.
			headings[i] += 0.25*angleTo(headings[i], toTarget) + 0.1*(rng.Float64()-0.5)
			players[i] = players[i].Add(
				mpn.Pt(speed*math.Cos(headings[i]), speed*math.Sin(headings[i])))
		}
		for i := range players {
			if group.NeedsUpdate(i, players[i]) {
				before := group.MeetingPoint()
				if err := group.Update(players, dirsOf()); err != nil {
					log.Fatal(err)
				}
				contacts++
				if group.MeetingPoint() != before {
					spotChanges++
				}
				break
			}
		}
	}
	fmt.Printf("%d timestamps at running speed: %d server contacts, %d rally-spot changes\n",
		steps, contacts, spotChanges)
	fmt.Printf("final rally spot: %v\n", group.MeetingPoint())

	// Show the region the laggard is allowed to roam.
	worst, worstDist := 0, 0.0
	for i, p := range players {
		if d := p.Dist(group.MeetingPoint()); d > worstDist {
			worst, worstDist = i, d
		}
	}
	r := group.Region(worst)
	fmt.Printf("slowest player %d is %.3f away; safe region %v spans %v\n",
		worst+1, worstDist, r, r.BoundingRect())
}

// angleTo returns the signed smallest rotation from a to b.
func angleTo(a, b float64) float64 {
	d := math.Mod(b-a, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}
