// Event calendar: the motivating scenario of the paper's Fig. 1. Three
// friends accept a dinner event; the calendar recommends the restaurant
// minimizing the worst member's travel. A traffic jam slows one user, and
// the Meeting Point Notification machinery detects — without polling —
// the moment the recommendation must switch to a different restaurant.
//
// Run with: go run ./examples/eventcalendar
package main

import (
	"fmt"
	"log"

	"mpn"
)

// restaurant couples a POI with a display name.
type restaurant struct {
	name string
	loc  mpn.Point
}

func main() {
	log.SetFlags(0)

	restaurants := []restaurant{
		{"Trattoria p1", mpn.Pt(0.50, 0.52)},
		{"Osteria p2", mpn.Pt(0.62, 0.40)},
		{"Pizzeria p3", mpn.Pt(0.35, 0.65)},
		{"Caffè p4", mpn.Pt(0.75, 0.70)},
		{"Cantina p5", mpn.Pt(0.20, 0.30)},
	}
	pois := make([]mpn.Point, len(restaurants))
	names := map[mpn.Point]string{}
	for i, r := range restaurants {
		pois[i] = r.loc
		names[r.loc] = r.name
	}

	server, err := mpn.NewServer(pois, mpn.WithMethod(mpn.Tile), mpn.WithTileLimit(10))
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 1a: u1 approaches from the west, u2 from the south-east, u3
	// from the north.
	users := []mpn.Point{
		mpn.Pt(0.30, 0.50), // u1 — will hit traffic
		mpn.Pt(0.65, 0.30), // u2
		mpn.Pt(0.55, 0.75), // u3
	}
	group, err := server.Register(users, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t1: calendar recommends %s\n", names[group.MeetingPoint()])

	// u2 and u3 drive toward the recommendation; u1 hits the Fig. 1
	// traffic jam — a closed road forces a 150-tick diversion west, away
	// from the restaurant — before resuming.
	notifications := 0
	for t := 1; t <= 300; t++ {
		target := group.MeetingPoint()
		for i := range users {
			goal := target
			if i == 0 && t <= 150 {
				goal = mpn.Pt(0.05, 0.45) // diversion away from downtown
			}
			dir := goal.Sub(users[i])
			if n := dir.Norm(); n > 1e-9 {
				users[i] = users[i].Add(dir.Scale(0.002 / n))
			}
		}
		for i := range users {
			if group.NeedsUpdate(i, users[i]) {
				before := group.MeetingPoint()
				if err := group.Update(users, nil); err != nil {
					log.Fatal(err)
				}
				notifications++
				if after := group.MeetingPoint(); after != before {
					fmt.Printf("t%d: recommendation changed %s -> %s (u%d escaped)\n",
						t+1, names[before], names[after], i+1)
				}
				break
			}
		}
	}
	fmt.Printf("\nfinal recommendation: %s after %d server contacts over 300 timestamps\n",
		names[group.MeetingPoint()], notifications)
	fmt.Println("a 1 Hz polling client would have contacted the server 900 times (3 users × 300 ticks)")
}
